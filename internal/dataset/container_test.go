package dataset

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// Property harness for the hybrid container layer. The strategy mirrors
// bitmap_test.go — pin every bitmap operation to the merge-based RowSet
// reference — but the generator here is adversarial about container
// shape instead of uniform-random: each 64K chunk of a generated bitmap
// is forced into one of the boundary populations (empty, full, a single
// run, a sparse array, the array→bitmap promotion threshold ±1, or a
// striped pattern no run encoding can compress), and universes straddle
// the chunk boundary itself. Every trial also re-checks the frozen
// (optimize()-compacted) forms, so array/run/bitmap re-encodings are
// exercised on both sides of every operation.

// chunkShapes enumerates the boundary populations a chunk can be forced
// into. Values are indices into shapeRows' switch.
const numChunkShapes = 8

// shapeRows returns the rows of chunk [base, base+lim) selected by the
// given shape, sorted ascending.
func shapeRows(rng *rand.Rand, shape, base, lim int) []int {
	pick := func(card int) []int {
		if card > lim {
			card = lim
		}
		perm := rng.Perm(lim)[:card]
		sort.Ints(perm)
		out := make([]int, card)
		for i, v := range perm {
			out[i] = base + v
		}
		return out
	}
	switch shape {
	case 0: // empty
		return nil
	case 1: // full
		out := make([]int, lim)
		for i := range out {
			out[i] = base + i
		}
		return out
	case 2: // single run
		start := rng.Intn(lim)
		end := start + rng.Intn(lim-start) + 1
		out := make([]int, 0, end-start)
		for v := start; v < end; v++ {
			out = append(out, base+v)
		}
		return out
	case 3: // sparse array
		return pick(1 + rng.Intn(64))
	case 4: // promotion threshold - 1
		return pick(arrayMaxCard - 1)
	case 5: // promotion threshold exactly
		return pick(arrayMaxCard)
	case 6: // promotion threshold + 1
		return pick(arrayMaxCard + 1)
	default: // stripes: every other value — incompressible for runs
		out := make([]int, 0, lim/2)
		for v := rng.Intn(2); v < lim; v += 2 {
			out = append(out, base+v)
		}
		return out
	}
}

// shapedBitmap builds a bitmap over universe n whose chunks each take a
// random boundary shape, returning it with its reference RowSet.
func shapedBitmap(rng *rand.Rand, n int) (*Bitmap, RowSet) {
	b := NewBitmap(n)
	var ref RowSet
	for base := 0; base < n; base += chunkSize {
		lim := n - base
		if lim > chunkSize {
			lim = chunkSize
		}
		rows := shapeRows(rng, rng.Intn(numChunkShapes), base, lim)
		for _, r := range rows {
			b.Add(r)
		}
		ref = append(ref, rows...)
	}
	if ref == nil {
		ref = RowSet{}
	}
	return b, ref
}

// refRank counts reference rows strictly below row.
func refRank(ref RowSet, row int) int {
	return sort.SearchInts(ref, row)
}

// checkAgainstReference runs the full operation matrix of (a, b, m)
// against the RowSet reference and reports the first divergence.
func checkAgainstReference(t *testing.T, label string, a, b, m *Bitmap, ra, rb, rm RowSet) {
	t.Helper()
	n := a.Universe()
	if got := a.ToRowSet(); !reflect.DeepEqual(got, ra) {
		t.Fatalf("%s: ToRowSet diverged: got %d rows, want %d", label, len(got), len(ra))
	}
	if a.Len() != len(ra) {
		t.Fatalf("%s: Len = %d, want %d", label, a.Len(), len(ra))
	}
	inter := ra.Intersect(rb)
	if got := a.And(b).ToRowSet(); !reflect.DeepEqual(got, inter) {
		t.Fatalf("%s: And diverged (got %d rows, want %d)", label, len(got), len(inter))
	}
	if got := a.Clone().AndWith(b).ToRowSet(); !reflect.DeepEqual(got, inter) {
		t.Fatalf("%s: AndWith diverged", label)
	}
	if got := a.AndLen(b); got != len(inter) {
		t.Fatalf("%s: AndLen = %d, want %d", label, got, len(inter))
	}
	union := ra.Union(rb)
	if got := a.Or(b).ToRowSet(); !reflect.DeepEqual(got, union) {
		t.Fatalf("%s: Or diverged (got %d rows, want %d)", label, len(got), len(union))
	}
	if got := a.Clone().OrWith(b).ToRowSet(); !reflect.DeepEqual(got, union) {
		t.Fatalf("%s: OrWith diverged", label)
	}
	minus := ra.Minus(rb)
	if got := a.AndNot(b).ToRowSet(); !reflect.DeepEqual(got, minus) {
		t.Fatalf("%s: AndNot diverged (got %d rows, want %d)", label, len(got), len(minus))
	}
	if got := a.Not().Len(); got != n-len(ra) {
		t.Fatalf("%s: Not().Len = %d, want %d", label, got, n-len(ra))
	}
	inter3 := inter.Intersect(rm)
	if got := a.AndLen3(b, m); got != len(inter3) {
		t.Fatalf("%s: AndLen3 = %d, want %d", label, got, len(inter3))
	}
	wantFirst := -1
	if len(inter) > 0 {
		wantFirst = inter[0]
	}
	if got := a.AndFirst(b); got != wantFirst {
		t.Fatalf("%s: AndFirst = %d, want %d", label, got, wantFirst)
	}
	var fused RowSet = RowSet{}
	a.ForEachAnd(b, func(r int) { fused = append(fused, r) })
	if !reflect.DeepEqual(fused, inter) {
		t.Fatalf("%s: ForEachAnd diverged", label)
	}
	rk := a.Ranks()
	probes := []int{0, 1, chunkSize - 1, chunkSize, chunkSize + 1, n - 1}
	for _, i := range rand.Perm(len(ra)) {
		probes = append(probes, ra[i])
		if len(probes) > 12 {
			break
		}
	}
	for _, p := range probes {
		if p < 0 || p >= n {
			continue
		}
		if got := rk.Rank(p); got != refRank(ra, p) {
			t.Fatalf("%s: Rank(%d) = %d, want %d", label, p, got, refRank(ra, p))
		}
	}
	// Lossless round-trip regardless of container forms.
	if got := FromRowSet(n, ra).ToRowSet(); !reflect.DeepEqual(got, ra) {
		t.Fatalf("%s: FromRowSet/ToRowSet round trip diverged", label)
	}
}

// TestContainerShapesAgainstReference is the boundary-shape property:
// bitmaps whose chunks are forced into empty/full/run/threshold±1/stripe
// forms agree with the RowSet reference on every operation, in both the
// as-built and the frozen (optimize-compacted) container forms.
func TestContainerShapesAgainstReference(t *testing.T) {
	universes := []int{chunkSize - 1, chunkSize, chunkSize + 1, 3*chunkSize - 1000}
	rng := rand.New(rand.NewSource(42))
	for _, n := range universes {
		for trial := 0; trial < 3; trial++ {
			a, ra := shapedBitmap(rng, n)
			b, rb := shapedBitmap(rng, n)
			m, rm := shapedBitmap(rng, n)
			checkAgainstReference(t, "raw", a, b, m, ra, rb, rm)
			// Frozen forms re-encode every chunk into its cheapest
			// container; the sets must be unchanged and all operations
			// must keep agreeing across mixed raw×frozen operands.
			fa, fb := a.Clone().Freeze(), b.Clone().Freeze()
			if !reflect.DeepEqual(fa.ToRowSet(), ra) {
				t.Fatalf("Freeze changed the set (n=%d trial=%d)", n, trial)
			}
			checkAgainstReference(t, "frozen", fa, fb, m, ra, rb, rm)
			checkAgainstReference(t, "mixed", a, fb, m, ra, rb, rm)
		}
	}
}

// TestContainerPromotionBoundary pins the array→bitmap promotion rules:
// ascending insertion keeps the array form through arrayMaxCard and
// promotes one past it; random-order insertion promotes early (after
// insertPromote out-of-order inserts) instead of paying quadratic
// memmoves; mutating a run container re-encodes it as packed words.
func TestContainerPromotionBoundary(t *testing.T) {
	// Ascending adds: array through the threshold, bitmap past it.
	b := NewBitmap(chunkSize)
	for v := 0; v < arrayMaxCard; v++ {
		b.Add(v * 3)
	}
	if k := b.cs[0].kind; k != arrayK {
		t.Fatalf("card %d ascending: kind = %d, want array", arrayMaxCard, k)
	}
	b.Add(arrayMaxCard * 3)
	if k := b.cs[0].kind; k != bitmapK {
		t.Fatalf("card %d: kind = %d, want bitmap after promotion", arrayMaxCard+1, k)
	}
	if b.Len() != arrayMaxCard+1 {
		t.Fatalf("Len after promotion = %d, want %d", b.Len(), arrayMaxCard+1)
	}

	// Descending (worst-case out-of-order) adds: early promotion long
	// before the cardinality threshold.
	d := NewBitmap(chunkSize)
	for v := 0; v < 2*insertPromote; v++ {
		d.Add(chunkSize - 1 - v)
	}
	if k := d.cs[0].kind; k != bitmapK {
		t.Fatalf("descending inserts: kind = %d, want early bitmap promotion", k)
	}
	if d.Len() != 2*insertPromote {
		t.Fatalf("descending Len = %d, want %d", d.Len(), 2*insertPromote)
	}

	// Run containers re-encode on mutation: a frozen full prefix is a
	// run; adding to a mutable clone must keep the set exact.
	r := NewBitmap(chunkSize)
	for v := 0; v < 10000; v++ {
		r.Add(v)
	}
	r.Freeze()
	if k := r.cs[0].kind; k != runK {
		t.Fatalf("contiguous prefix after Freeze: kind = %d, want run", k)
	}
	rc := r.Clone()
	rc.Add(20000)
	if !rc.Contains(20000) || !rc.Contains(9999) || rc.Len() != 10001 {
		t.Fatal("run container mutation lost members")
	}
}

// TestContainerOptimizePicksCheapestForm checks Freeze re-encodes each
// chunk into the min-byte representation: contiguous blocks become runs,
// sparse tails become exact-size arrays, and striped chunks — where no
// cheaper form exists — stay packed words.
func TestContainerOptimizePicksCheapestForm(t *testing.T) {
	n := 2 * chunkSize
	b := NewBitmap(n)
	for v := 0; v < chunkSize; v++ {
		b.Add(v) // chunk 0: full → one run
	}
	for v := chunkSize; v < 2*chunkSize; v += 2 {
		b.Add(v) // chunk 1: stripes → must stay a bitmap
	}
	before := b.MemoryBytes()
	b.Freeze()
	if k := b.cs[0].kind; k != runK {
		t.Fatalf("full chunk froze to kind %d, want run", k)
	}
	if k := b.cs[1].kind; k != bitmapK {
		t.Fatalf("striped chunk froze to kind %d, want bitmap", k)
	}
	after := b.MemoryBytes()
	if after > before {
		t.Fatalf("optimize grew memory: %d -> %d bytes", before, after)
	}
	// The full chunk collapsed from 8KiB of words to one 4-byte run.
	if want := 4 + bitmapWords*8; after != want {
		t.Fatalf("MemoryBytes after freeze = %d, want %d", after, want)
	}
	// Sparse chunk: ~2 bytes per member (MemoryBytes counts capacity, so
	// allocator size-class rounding allows a few slack bytes — never the
	// 8KiB a packed chunk would cost).
	s := NewBitmap(chunkSize)
	for v := 0; v < 100; v++ {
		s.Add(v * 577)
	}
	if got := s.Clone().Freeze().MemoryBytes(); got < 200 || got > 256 {
		t.Fatalf("sparse frozen MemoryBytes = %d, want ~200", got)
	}
}

// TestFrozenContainerKindsGuarded: the alias guard (armed by TestMain)
// must trip on in-place mutation regardless of which container form
// Freeze chose for a chunk — array, run, or packed bitmap.
func TestFrozenContainerKindsGuarded(t *testing.T) {
	build := func(kind ckind) *Bitmap {
		b := NewBitmap(chunkSize)
		switch kind {
		case arrayK:
			b.Add(7)
		case runK:
			for v := 0; v < 9000; v++ {
				b.Add(v)
			}
		default: // bitmapK: stripes resist run encoding
			for v := 0; v < chunkSize; v += 2 {
				b.Add(v)
			}
		}
		b.Freeze()
		if b.cs[0].kind != kind {
			t.Fatalf("fixture froze to kind %d, want %d", b.cs[0].kind, kind)
		}
		return b
	}
	other := NewBitmap(chunkSize)
	other.Add(3)
	mutators := map[string]func(*Bitmap){
		"Add":     func(b *Bitmap) { b.Add(11) },
		"AndWith": func(b *Bitmap) { b.AndWith(other) },
		"OrWith":  func(b *Bitmap) { b.OrWith(other) },
	}
	for _, kind := range []ckind{arrayK, runK, bitmapK} {
		for name, mutate := range mutators {
			b := build(kind)
			func() {
				defer func() {
					if recover() == nil {
						t.Errorf("kind %d: %s on frozen bitmap did not panic", kind, name)
					}
				}()
				mutate(b)
			}()
			// A clone must be mutable whatever form it inherited.
			mutate(b.Clone())
		}
	}
}

// TestGallopIntersection drives the galloping array intersection on the
// imbalanced operands it exists for: a handful of probes against a large
// sorted array, on both sides.
func TestGallopIntersection(t *testing.T) {
	n := chunkSize
	big := NewBitmap(n)
	var ref RowSet
	for v := 0; v < n; v += 7 {
		big.Add(v)
		ref = append(ref, v)
	}
	small := NewBitmap(n)
	for _, v := range []int{0, 7, 13, 7 * 1000, 7*2000 + 1, n - 2} {
		small.Add(v)
	}
	want := small.ToRowSet().Intersect(ref)
	if got := small.And(big).ToRowSet(); !reflect.DeepEqual(got, want) {
		t.Fatalf("gallop small×big = %v, want %v", got, want)
	}
	if got := big.And(small).ToRowSet(); !reflect.DeepEqual(got, want) {
		t.Fatalf("gallop big×small = %v, want %v", got, want)
	}
	if got := small.AndLen(big); got != len(want) {
		t.Fatalf("gallop AndLen = %d, want %d", got, len(want))
	}
}
