package dataset

// Concurrency and aliasing regression tests for the posting index. Run
// with -race; TestMain arms the alias guard so any in-place mutation of
// an index-owned bitmap panics instead of silently corrupting postings
// shared across queries.

import (
	"os"
	"reflect"
	"sync"
	"testing"
)

func TestMain(m *testing.M) {
	SetAliasGuard(true)
	os.Exit(m.Run())
}

// TestIndexConcurrentLazyBuilds races many goroutines into the same
// fresh index: every one triggers the lazy categorical-posting and
// sorted-order builds while others query, and all must observe results
// identical to a sequential evaluation.
func TestIndexConcurrentLazyBuilds(t *testing.T) {
	tbl := indexTestTable(t, 2000, 7)
	// Sequential ground truth from a separate identically-built table, so
	// the table under test starts with a completely cold index.
	ref := indexTestTable(t, 2000, 7)
	refIx := ref.Index()
	wantEq := refIx.CatEq(0, 2).ToRowSet()
	wantRange := refIx.NumRange(1, 4000, 12000).ToRowSet()

	ix := tbl.Index()
	const goroutines = 16
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if got := ix.CatEq(0, 2).ToRowSet(); !reflect.DeepEqual(got, wantEq) {
					errs <- "CatEq diverged under concurrent lazy build"
					return
				}
				if got := ix.NumRange(1, 4000, 12000).ToRowSet(); !reflect.DeepEqual(got, wantRange) {
					errs <- "NumRange diverged under concurrent lazy build"
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
}

// TestAliasGuardTripsOnIndexBitmapMutation pins the read-only contract:
// mutating a bitmap returned by CatEq (which aliases index-owned
// postings) must panic with the guard armed, for every mutator.
func TestAliasGuardTripsOnIndexBitmapMutation(t *testing.T) {
	tbl := indexTestTable(t, 100, 3)
	ix := tbl.Index()
	other := NewBitmap(tbl.NumRows())
	other.Add(0)

	mutators := map[string]func(bm *Bitmap){
		"Add":    func(bm *Bitmap) { bm.Add(1) },
		"OrWith": func(bm *Bitmap) { bm.OrWith(other) },
		"AndWith": func(bm *Bitmap) {
			bm.AndWith(other)
		},
	}
	for name, mutate := range mutators {
		t.Run(name, func(t *testing.T) {
			bm := ix.CatEq(0, 0)
			defer func() {
				if recover() == nil {
					t.Fatalf("%s on an index-owned bitmap did not trip the alias guard", name)
				}
			}()
			mutate(bm)
		})
	}
}

// TestCloneUnfreezes confirms the sanctioned escape hatch: Clone returns
// a caller-owned bitmap the guard does not police.
func TestCloneUnfreezes(t *testing.T) {
	tbl := indexTestTable(t, 100, 3)
	orig := tbl.Index().CatEq(0, 0)
	had := orig.Contains(99)
	bm := orig.Clone()
	if !had {
		bm.Add(99) // must not panic: the clone is caller-owned
	} else {
		bm.AndWith(NewBitmap(tbl.NumRows()))
	}
	// The index-owned original is untouched by mutations of the clone.
	if orig.Contains(99) != had || !reflect.DeepEqual(orig.ToRowSet(), tbl.Index().CatEq(0, 0).ToRowSet()) {
		t.Fatal("mutating the clone leaked into the index")
	}
}

// TestSetAliasGuardRestores checks the guard toggle returns the previous
// state so TestMains can scope it.
func TestSetAliasGuardRestores(t *testing.T) {
	prev := SetAliasGuard(false)
	if !prev {
		t.Fatal("guard should have been armed by TestMain")
	}
	if was := SetAliasGuard(prev); was {
		t.Fatal("SetAliasGuard(false) did not disarm")
	}
}

// TestConcurrentAppendAndQuery races batch appends against index reads:
// every reader takes an epoch-consistent Index snapshot and checks its
// invariants (postings partition the snapshot's rows, frequencies sum to
// them, the sorted order's valid count matches an unbounded range), so a
// torn publication of the tail segment would surface as an arithmetic
// mismatch even before -race flags it.
func TestConcurrentAppendAndQuery(t *testing.T) {
	rows := boundaryAppendRows(24000)
	tbl := boundaryAppendTable(t, rows[:1000])
	warmIndex(tbl.Index(), tbl)

	stop := make(chan struct{})
	errs := make(chan string, 16)
	var readers sync.WaitGroup
	for g := 0; g < 8; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ix := tbl.Index()
				n := ix.Rows()
				total := 0
				for _, bm := range ix.CatPostings(1) {
					total += bm.Len()
				}
				if total != n {
					errs <- "postings do not partition the snapshot rows"
					return
				}
				fsum := 0
				for _, f := range ix.CatFreqs(0) {
					fsum += int(f)
				}
				if fsum != n {
					errs <- "freqs do not sum to the snapshot rows"
					return
				}
				if got := ix.NumCmpRangeLen(2, 1e18, true, true, false); got != ix.valid[2] {
					errs <- "unbounded range misses non-NaN rows of the snapshot"
					return
				}
			}
		}()
	}
	for i := 1000; i < len(rows); i += 1000 {
		if err := tbl.AppendBatch(rows[i : i+1000]); err != nil {
			t.Fatalf("AppendBatch: %v", err)
		}
	}
	close(stop)
	readers.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
	// Quiescent check: the final extended snapshot matches a cold rebuild.
	ix := tbl.Index()
	cold := boundaryAppendTable(t, rows)
	if !reflect.DeepEqual(ix.CatFreqs(0), cold.Index().CatFreqs(0)) {
		t.Fatal("final extended freqs differ from cold rebuild")
	}
}
