package dataset

import (
	"math/bits"
	"sync/atomic"
)

// Bitmap is a fixed-universe row set: bit i is set when row i belongs to
// the set. It is the vectorized counterpart of RowSet — set algebra runs
// word-wise over packed uint64s (64 rows per operation) instead of
// row-at-a-time merges, which is what makes compiled predicate
// evaluation and cached facet filter stacks scale with words, not rows.
//
// A Bitmap is created for a universe of n rows ({0, ..., n-1}) and all
// binary operations require both operands to share that universe; mixing
// universes is a programming error and panics. Conversion to and from
// RowSet is lossless: both representations are canonical (a row is
// either in or out), so FromRowSet followed by ToRowSet returns the
// original sorted unique rows.
type Bitmap struct {
	words []uint64
	n     int // universe size in bits

	// frozen marks index-owned bitmaps (posting sets) that outside code
	// must never mutate: the same words back every query that touches
	// the posting. Mutators panic on frozen bitmaps when the alias guard
	// is enabled (tests); Clone always returns a mutable copy.
	frozen bool
}

// aliasGuard, when enabled, makes in-place mutation of a frozen bitmap
// panic instead of silently corrupting the shared index. Test suites
// turn it on; production keeps the check to one branch on a local bool.
var aliasGuard atomic.Bool

// SetAliasGuard enables or disables the frozen-bitmap mutation guard,
// returning the previous setting. Intended for tests (TestMain).
func SetAliasGuard(on bool) (prev bool) {
	return aliasGuard.Swap(on)
}

// Freeze marks the bitmap as index-owned: with the alias guard enabled,
// any in-place mutation panics. It returns b for chaining.
func (b *Bitmap) Freeze() *Bitmap {
	b.frozen = true
	return b
}

// checkMutable panics when a frozen bitmap is about to be mutated and
// the alias guard is on.
func (b *Bitmap) checkMutable() {
	if b.frozen && aliasGuard.Load() {
		panic("dataset: in-place mutation of an index-owned bitmap (clone it first)")
	}
}

// NewBitmap returns an empty bitmap over the universe {0, ..., n-1}.
func NewBitmap(n int) *Bitmap {
	if n < 0 {
		panic("dataset: negative bitmap universe")
	}
	return &Bitmap{words: make([]uint64, (n+63)/64), n: n}
}

// FullBitmap returns the bitmap with every row of the universe set.
func FullBitmap(n int) *Bitmap {
	b := NewBitmap(n)
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
	b.clearTail()
	return b
}

// FromRowSet packs a sorted unique row set over universe n into a bitmap.
func FromRowSet(n int, rows RowSet) *Bitmap {
	b := NewBitmap(n)
	for _, r := range rows {
		b.Add(r)
	}
	return b
}

// clearTail zeroes the bits past the universe end in the last word, so
// complement and popcount never see phantom rows.
func (b *Bitmap) clearTail() {
	if rem := b.n % 64; rem != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] &= (uint64(1) << rem) - 1
	}
}

// Universe returns the universe size n the bitmap was created for.
func (b *Bitmap) Universe() int { return b.n }

// Add sets row i.
func (b *Bitmap) Add(i int) {
	b.checkMutable()
	if i < 0 || i >= b.n {
		panic("dataset: bitmap row out of universe")
	}
	b.words[i>>6] |= 1 << (uint(i) & 63)
}

// Contains reports whether row i is set. Rows outside the universe are
// never members.
func (b *Bitmap) Contains(i int) bool {
	if i < 0 || i >= b.n {
		return false
	}
	return b.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// Len returns the set cardinality (population count over all words).
func (b *Bitmap) Len() int {
	total := 0
	for _, w := range b.words {
		total += bits.OnesCount64(w)
	}
	return total
}

// Clone returns a copy of b.
func (b *Bitmap) Clone() *Bitmap {
	return &Bitmap{words: append([]uint64(nil), b.words...), n: b.n}
}

// sameUniverse panics unless o shares b's universe.
func (b *Bitmap) sameUniverse(o *Bitmap) {
	if b.n != o.n {
		panic("dataset: bitmap universe mismatch")
	}
}

// And returns the intersection b ∩ o as a new bitmap.
func (b *Bitmap) And(o *Bitmap) *Bitmap {
	b.sameUniverse(o)
	out := &Bitmap{words: make([]uint64, len(b.words)), n: b.n}
	for i, w := range b.words {
		out.words[i] = w & o.words[i]
	}
	return out
}

// AndWith intersects o into b in place and returns b, for folding long
// filter stacks without one allocation per step.
func (b *Bitmap) AndWith(o *Bitmap) *Bitmap {
	b.checkMutable()
	b.sameUniverse(o)
	for i := range b.words {
		b.words[i] &= o.words[i]
	}
	return b
}

// Or returns the union b ∪ o as a new bitmap.
func (b *Bitmap) Or(o *Bitmap) *Bitmap {
	b.sameUniverse(o)
	out := &Bitmap{words: make([]uint64, len(b.words)), n: b.n}
	for i, w := range b.words {
		out.words[i] = w | o.words[i]
	}
	return out
}

// OrWith unions o into b in place and returns b.
func (b *Bitmap) OrWith(o *Bitmap) *Bitmap {
	b.checkMutable()
	b.sameUniverse(o)
	for i := range b.words {
		b.words[i] |= o.words[i]
	}
	return b
}

// AndNot returns the difference b \ o as a new bitmap.
func (b *Bitmap) AndNot(o *Bitmap) *Bitmap {
	b.sameUniverse(o)
	out := &Bitmap{words: make([]uint64, len(b.words)), n: b.n}
	for i, w := range b.words {
		out.words[i] = w &^ o.words[i]
	}
	return out
}

// Not returns the complement of b within its universe.
func (b *Bitmap) Not() *Bitmap {
	out := &Bitmap{words: make([]uint64, len(b.words)), n: b.n}
	for i, w := range b.words {
		out.words[i] = ^w
	}
	out.clearTail()
	return out
}

// AndLen returns |b ∩ o| without materializing the intersection — the
// facet digest's per-code counting primitive.
func (b *Bitmap) AndLen(o *Bitmap) int {
	b.sameUniverse(o)
	total := 0
	for i, w := range b.words {
		total += bits.OnesCount64(w & o.words[i])
	}
	return total
}

// AndLen3 returns |b ∩ o ∩ m| by fused popcount, without materializing
// either intersection. Contingency cells are |posting ∩ classPosting ∩
// result|; counting through this instead of allocating the class ∩
// result bitmaps first removes one bitmap allocation per class from
// every feature-selection sweep.
func (b *Bitmap) AndLen3(o, m *Bitmap) int {
	b.sameUniverse(o)
	b.sameUniverse(m)
	total := 0
	for i, w := range b.words {
		total += bits.OnesCount64(w & o.words[i] & m.words[i])
	}
	return total
}

// AndFirst returns the smallest row of b ∩ o, or -1 when the
// intersection is empty, without materializing it. The builder uses it
// to derive class first-occurrence order from posting bitmaps.
func (b *Bitmap) AndFirst(o *Bitmap) int {
	b.sameUniverse(o)
	for i, w := range b.words {
		if m := w & o.words[i]; m != 0 {
			return i<<6 + bits.TrailingZeros64(m)
		}
	}
	return -1
}

// ForEach calls fn for every set row in ascending order.
func (b *Bitmap) ForEach(fn func(row int)) {
	for i, w := range b.words {
		base := i << 6
		for w != 0 {
			fn(base + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// ForEachAnd calls fn for every row of b ∩ o in ascending order without
// materializing the intersection — the fused form of And().ForEach().
func (b *Bitmap) ForEachAnd(o *Bitmap, fn func(row int)) {
	b.sameUniverse(o)
	for i, w := range b.words {
		w &= o.words[i]
		base := i << 6
		for w != 0 {
			fn(base + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// Ranks is a per-word prefix popcount over a bitmap: Rank answers
// |{r ∈ b : r < row}| in O(1), which is what lets a builder scatter
// posting-derived values into a dense array indexed by the row's
// position within the set. Build cost is one pass over the words.
type Ranks struct {
	b   *Bitmap
	pre []int32 // pre[i] = set bits in words[0:i]
}

// Ranks returns the prefix-popcount rank structure for b. The structure
// snapshots nothing — it reads b's words on each Rank call — so b must
// not be mutated while the Ranks is in use.
func (b *Bitmap) Ranks() *Ranks {
	pre := make([]int32, len(b.words)+1)
	for i, w := range b.words {
		pre[i+1] = pre[i] + int32(bits.OnesCount64(w))
	}
	return &Ranks{b: b, pre: pre}
}

// Rank returns the number of set rows strictly below row.
func (rk *Ranks) Rank(row int) int {
	w := row >> 6
	return int(rk.pre[w]) + bits.OnesCount64(rk.b.words[w]&(1<<(uint(row)&63)-1))
}

// ToRowSet unpacks the bitmap into a sorted unique RowSet.
func (b *Bitmap) ToRowSet() RowSet {
	out := make(RowSet, 0, b.Len())
	b.ForEach(func(row int) { out = append(out, row) })
	return out
}
