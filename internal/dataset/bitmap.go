package dataset

import (
	"math/bits"
	"sync/atomic"

	"dbexplorer/internal/parallel"
)

// Bitmap is a fixed-universe row set: row i belongs to the set when its
// bit is set. It is the vectorized counterpart of RowSet — but instead
// of one flat array of uint64 words, the universe is split into 64K-row
// chunks each stored as a hybrid container (sorted uint16 array, packed
// bitmap words, or run intervals; see container.go) chosen by the
// chunk's population. Sparse sets therefore cost memory and set-algebra
// time proportional to their cardinality, not to the universe: a
// 0.1%-selectivity posting over a million rows is a handful of small
// arrays, and intersecting two of them gallops through the shorter one
// instead of streaming rows/64 words.
//
// A Bitmap is created for a universe of n rows ({0, ..., n-1}) and all
// binary operations require both operands to share that universe; mixing
// universes is a programming error and panics. Conversion to and from
// RowSet is lossless: both representations are canonical (a row is
// either in or out), so FromRowSet followed by ToRowSet returns the
// original sorted unique rows regardless of which container form each
// chunk happens to be in.
type Bitmap struct {
	cs []container // one per 64K chunk; the last chunk may be partial
	n  int         // universe size in bits

	// frozen marks index-owned bitmaps (posting sets) that outside code
	// must never mutate: the same containers back every query that
	// touches the posting. Mutators panic on frozen bitmaps when the
	// alias guard is enabled (tests); Clone always returns a mutable
	// copy.
	frozen bool
}

// aliasGuard, when enabled, makes in-place mutation of a frozen bitmap
// panic instead of silently corrupting the shared index. Test suites
// turn it on; production keeps the check to one branch on a local bool.
var aliasGuard atomic.Bool

// SetAliasGuard enables or disables the frozen-bitmap mutation guard,
// returning the previous setting. Intended for tests (TestMain).
func SetAliasGuard(on bool) (prev bool) {
	return aliasGuard.Swap(on)
}

// Freeze marks the bitmap as index-owned — with the alias guard enabled,
// any in-place mutation panics — and compacts each chunk into its
// cheapest container form (sorted tails become exact-size arrays,
// clustered or head-heavy chunks become runs). It returns b for
// chaining. Freeze is the owner's final build step; the set is
// unchanged.
func (b *Bitmap) Freeze() *Bitmap {
	for i := range b.cs {
		b.cs[i].optimize()
	}
	b.frozen = true
	return b
}

// checkMutable panics when a frozen bitmap is about to be mutated and
// the alias guard is on.
func (b *Bitmap) checkMutable() {
	if b.frozen && aliasGuard.Load() {
		panic("dataset: in-place mutation of an index-owned bitmap (clone it first)")
	}
}

// NewBitmap returns an empty bitmap over the universe {0, ..., n-1}.
func NewBitmap(n int) *Bitmap {
	if n < 0 {
		panic("dataset: negative bitmap universe")
	}
	return &Bitmap{cs: make([]container, (n+chunkMask)>>chunkBits), n: n}
}

// FullBitmap returns the bitmap with every row of the universe set —
// one run container per chunk.
func FullBitmap(n int) *Bitmap {
	b := NewBitmap(n)
	for i := range b.cs {
		b.cs[i] = fullContainer(b.chunkLim(i))
	}
	return b
}

// FromRowSet packs a sorted unique row set over universe n into a bitmap.
// Each 64K segment's span of the set becomes that segment's container
// directly (sorted offsets → exact-size array, dense spans → packed
// words), and large sets pack their segments in parallel on the shared
// pool — this is the builder's entry into bitmap algebra, so packing a
// million-row result must not cost a million promotion-checked Adds.
// Inputs that violate the RowSet contract (unsorted or duplicated) fall
// back to the per-row Add path with identical set semantics.
func FromRowSet(n int, rows RowSet) *Bitmap {
	b := NewBitmap(n)
	if len(rows) == 0 {
		return b
	}
	if rows[0] < 0 || rows[len(rows)-1] >= n {
		panic("dataset: bitmap row out of universe")
	}
	ok := true
	if len(rows) >= parallelPackMin && len(b.cs) > 1 {
		var bad atomic.Bool
		parallel.Do(len(b.cs), func(s int) {
			c, packed := packSpan(rows.SegmentSpan(s))
			if !packed {
				bad.Store(true)
				return
			}
			b.cs[s] = c
		})
		ok = !bad.Load()
	} else {
		lo := 0
		for s := 0; ok && s < len(b.cs); s++ {
			hi := lo
			lim := (s + 1) << chunkBits
			for hi < len(rows) && rows[hi] < lim {
				hi++
			}
			var c container
			c, ok = packSpan(rows[lo:hi])
			if ok {
				b.cs[s] = c
			}
			lo = hi
		}
	}
	if !ok {
		for i := range b.cs {
			b.cs[i] = container{}
		}
		for _, r := range rows {
			b.Add(r)
		}
	}
	return b
}

// parallelPackMin is the set size past which FromRowSet packs segments
// on the worker pool instead of inline.
const parallelPackMin = 1 << 16

// packSpan builds the container for one segment's span of a row set.
// It reports false when the span is not strictly ascending (contract
// violation); the caller then falls back to the Add path.
func packSpan(span RowSet) (container, bool) {
	cnt := len(span)
	if cnt == 0 {
		return container{}, true
	}
	prev := -1
	if cnt > arrayMaxCard {
		w := make([]uint64, bitmapWords)
		for _, r := range span {
			if r <= prev {
				return container{}, false
			}
			prev = r
			off := r & chunkMask
			w[off>>6] |= 1 << (uint(off) & 63)
		}
		return container{kind: bitmapK, card: int32(cnt), words: w}, true
	}
	arr := make([]uint16, cnt)
	for i, r := range span {
		if r <= prev {
			return container{}, false
		}
		prev = r
		arr[i] = uint16(r & chunkMask)
	}
	return container{kind: arrayK, card: int32(cnt), array: arr}, true
}

// chunkLim returns the number of universe rows chunk i covers (chunkSize
// for all but possibly the last chunk).
func (b *Bitmap) chunkLim(i int) int {
	if lim := b.n - i<<chunkBits; lim < chunkSize {
		return lim
	}
	return chunkSize
}

// Universe returns the universe size n the bitmap was created for.
func (b *Bitmap) Universe() int { return b.n }

// MemoryBytes returns the bytes of backing storage the bitmap holds —
// the payload the posting-memory gauge aggregates, excluding the fixed
// struct headers. Hybrid containers make this proportional to the
// chunk populations rather than a flat rows/8.
func (b *Bitmap) MemoryBytes() int {
	total := 0
	for i := range b.cs {
		total += b.cs[i].memoryBytes()
	}
	return total
}

// Add sets row i, promoting the chunk's container when it outgrows its
// representation (array → packed words past arrayMaxCard, or earlier
// under random-order insertion).
func (b *Bitmap) Add(i int) {
	b.checkMutable()
	if i < 0 || i >= b.n {
		panic("dataset: bitmap row out of universe")
	}
	b.cs[i>>chunkBits].add(uint16(i & chunkMask))
}

// Contains reports whether row i is set. Rows outside the universe are
// never members.
func (b *Bitmap) Contains(i int) bool {
	if i < 0 || i >= b.n {
		return false
	}
	return b.cs[i>>chunkBits].contains(uint16(i & chunkMask))
}

// FilterRowSet returns the subsequence of rows contained in b, in input
// order. Runs of rows within one segment resolve against that segment's
// container directly — one bounds check and container dispatch per
// segment run instead of per row — and empty segments skip their whole
// run. Out-of-universe rows are dropped, as Contains would.
func (b *Bitmap) FilterRowSet(rows RowSet) RowSet {
	out := make(RowSet, 0, len(rows))
	for i := 0; i < len(rows); {
		r := rows[i]
		if r < 0 || r >= b.n {
			i++
			continue
		}
		s := r >> chunkBits
		c := &b.cs[s]
		if c.card == 0 {
			for i < len(rows) && rows[i]>>chunkBits == s {
				i++
			}
			continue
		}
		for i < len(rows) && rows[i]>>chunkBits == s {
			if c.contains(uint16(rows[i] & chunkMask)) {
				out = append(out, rows[i])
			}
			i++
		}
	}
	return out
}

// Len returns the set cardinality. Containers cache their population,
// so this is O(chunks), not O(rows).
func (b *Bitmap) Len() int {
	total := 0
	for i := range b.cs {
		total += int(b.cs[i].card)
	}
	return total
}

// Clone returns a mutable copy of b.
func (b *Bitmap) Clone() *Bitmap {
	out := &Bitmap{cs: make([]container, len(b.cs)), n: b.n}
	for i := range b.cs {
		out.cs[i] = b.cs[i].clone()
	}
	return out
}

// sameUniverse panics unless o shares b's universe.
func (b *Bitmap) sameUniverse(o *Bitmap) {
	if b.n != o.n {
		panic("dataset: bitmap universe mismatch")
	}
}

// And returns the intersection b ∩ o as a new bitmap.
func (b *Bitmap) And(o *Bitmap) *Bitmap {
	b.sameUniverse(o)
	out := &Bitmap{cs: make([]container, len(b.cs)), n: b.n}
	for i := range b.cs {
		out.cs[i] = andContainers(&b.cs[i], &o.cs[i])
	}
	return out
}

// AndWith intersects o into b in place and returns b, for folding long
// filter stacks without one allocation per step.
func (b *Bitmap) AndWith(o *Bitmap) *Bitmap {
	b.checkMutable()
	b.sameUniverse(o)
	for i := range b.cs {
		if b.cs[i].card == 0 {
			continue
		}
		if o.cs[i].card == 0 {
			b.cs[i] = container{}
			continue
		}
		b.cs[i] = andContainers(&b.cs[i], &o.cs[i])
	}
	return b
}

// Or returns the union b ∪ o as a new bitmap.
func (b *Bitmap) Or(o *Bitmap) *Bitmap {
	b.sameUniverse(o)
	out := &Bitmap{cs: make([]container, len(b.cs)), n: b.n}
	for i := range b.cs {
		out.cs[i] = orContainers(&b.cs[i], &o.cs[i])
	}
	return out
}

// OrWith unions o into b in place and returns b.
func (b *Bitmap) OrWith(o *Bitmap) *Bitmap {
	b.checkMutable()
	b.sameUniverse(o)
	for i := range b.cs {
		if o.cs[i].card == 0 {
			continue
		}
		b.cs[i] = orContainers(&b.cs[i], &o.cs[i])
	}
	return b
}

// AndNot returns the difference b \ o as a new bitmap.
func (b *Bitmap) AndNot(o *Bitmap) *Bitmap {
	b.sameUniverse(o)
	out := &Bitmap{cs: make([]container, len(b.cs)), n: b.n}
	for i := range b.cs {
		out.cs[i] = andNotContainers(&b.cs[i], &o.cs[i])
	}
	return out
}

// Not returns the complement of b within its universe.
func (b *Bitmap) Not() *Bitmap {
	out := &Bitmap{cs: make([]container, len(b.cs)), n: b.n}
	for i := range b.cs {
		out.cs[i] = notContainer(&b.cs[i], b.chunkLim(i))
	}
	return out
}

// complete reports whether chunk i's container holds every row of the
// chunk's universe span. Intersecting with a complete container is the
// identity over the chunk, so the fused-count and iteration primitives
// below drop complete operands from the op entirely — on the common
// "over the whole table" shapes (CAD View builds over AllRows, facet
// digests of unfiltered results) this turns per-member probe work into
// a cached-cardinality lookup. The container cardinality is maintained
// by every mutation, so the check is O(1) and exact.
func (b *Bitmap) complete(i int) bool {
	return int(b.cs[i].card) == b.chunkLim(i)
}

// AndLen returns |b ∩ o| without materializing the intersection — the
// facet digest's per-code counting primitive. Sparse×sparse pairs
// gallop; dense pairs popcount fused words; chunks where either operand
// is complete read the other's cached cardinality.
func (b *Bitmap) AndLen(o *Bitmap) int {
	b.sameUniverse(o)
	total := 0
	for i := range b.cs {
		switch {
		case o.complete(i):
			total += int(b.cs[i].card)
		case b.complete(i):
			total += int(o.cs[i].card)
		default:
			total += andLenContainers(&b.cs[i], &o.cs[i])
		}
	}
	return total
}

// AndLen3 returns |b ∩ o ∩ m| by fused counting, without materializing
// either intersection. Contingency cells are |posting ∩ classPosting ∩
// result|; counting through this instead of allocating the class ∩
// result bitmaps first removes one bitmap allocation per class from
// every feature-selection sweep. Complete operands reduce the chunk to
// a two-way count (or a cached cardinality), which is what makes
// whole-table contingency sweeps probe-free in their result operand.
func (b *Bitmap) AndLen3(o, m *Bitmap) int {
	b.sameUniverse(o)
	b.sameUniverse(m)
	total := 0
	for i := range b.cs {
		bc, oc, mc := &b.cs[i], &o.cs[i], &m.cs[i]
		if m.complete(i) {
			mc = nil
		}
		if o.complete(i) {
			oc = mc
			mc = nil
		}
		if b.complete(i) {
			bc = oc
			oc = mc
			mc = nil
		}
		switch {
		case bc == nil:
			total += b.chunkLim(i)
		case oc == nil:
			total += int(bc.card)
		case mc == nil:
			total += andLenContainers(bc, oc)
		default:
			total += andLen3Containers(bc, oc, mc)
		}
	}
	return total
}

// AndFirst returns the smallest row of b ∩ o, or -1 when the
// intersection is empty, without materializing it. The builder uses it
// to derive class first-occurrence order from posting bitmaps.
func (b *Bitmap) AndFirst(o *Bitmap) int {
	b.sameUniverse(o)
	for i := range b.cs {
		var v int
		switch {
		case o.complete(i):
			v = b.cs[i].first()
		case b.complete(i):
			v = o.cs[i].first()
		default:
			v = andFirstContainers(&b.cs[i], &o.cs[i])
		}
		if v >= 0 {
			return i<<chunkBits + v
		}
	}
	return -1
}

// ForEach calls fn for every set row in ascending order.
func (b *Bitmap) ForEach(fn func(row int)) {
	for i := range b.cs {
		b.cs[i].forEach(i<<chunkBits, fn)
	}
}

// NumSegments returns the number of 64K-row segments (containers) the
// bitmap's universe spans — the morsel count for segment-parallel
// consumers. It equals dataset.NumSegments(b.Universe()).
func (b *Bitmap) NumSegments() int { return len(b.cs) }

// SegmentLen returns the number of set rows in segment s without
// iterating them; morsel schedulers use it to skip empty segments and
// size work items.
func (b *Bitmap) SegmentLen(s int) int { return int(b.cs[s].card) }

// ForEachInSegment calls fn for every set row of segment s in ascending
// order, with global row ids. Segment-parallel consumers fan one
// goroutine per segment over the shared pool and iterate their morsel
// through this instead of a global ForEach.
func (b *Bitmap) ForEachInSegment(s int, fn func(row int)) {
	b.cs[s].forEach(s<<chunkBits, fn)
}

// ForEachAnd calls fn for every row of b ∩ o in ascending order without
// materializing the intersection — the fused form of And().ForEach().
// Chunks where one operand is complete iterate the other directly.
func (b *Bitmap) ForEachAnd(o *Bitmap, fn func(row int)) {
	b.sameUniverse(o)
	for i := range b.cs {
		switch {
		case o.complete(i):
			b.cs[i].forEach(i<<chunkBits, fn)
		case b.complete(i):
			o.cs[i].forEach(i<<chunkBits, fn)
		default:
			forEachAndContainers(&b.cs[i], &o.cs[i], i<<chunkBits, fn)
		}
	}
}

// Ranks is a prefix-popcount structure over a bitmap: Rank answers
// |{r ∈ b : r < row}| in O(1) for dense chunks and O(log card) for
// sparse ones, which is what lets a builder scatter posting-derived
// values into a dense array indexed by the row's position within the
// set. Build cost is one pass over the containers.
type Ranks struct {
	b        *Bitmap
	chunkPre []int32   // chunkPre[i] = members in chunks [0, i)
	wordPre  [][]int32 // per packed chunk: members in words [0, w); nil otherwise
}

// Ranks returns the rank structure for b. The per-chunk prefixes are
// snapshotted at build; b must not be mutated while the Ranks is in use.
func (b *Bitmap) Ranks() *Ranks {
	rk := &Ranks{
		b:        b,
		chunkPre: make([]int32, len(b.cs)+1),
		wordPre:  make([][]int32, len(b.cs)),
	}
	for i := range b.cs {
		c := &b.cs[i]
		rk.chunkPre[i+1] = rk.chunkPre[i] + c.card
		if c.kind == bitmapK {
			pre := make([]int32, bitmapWords)
			acc := int32(0)
			for w, x := range c.words {
				pre[w] = acc
				acc += int32(bits.OnesCount64(x))
			}
			rk.wordPre[i] = pre
		}
	}
	return rk
}

// Rank returns the number of set rows strictly below row.
func (rk *Ranks) Rank(row int) int {
	ch := row >> chunkBits
	c := &rk.b.cs[ch]
	low := uint16(row & chunkMask)
	if c.kind == bitmapK {
		w := low >> 6
		return int(rk.chunkPre[ch]) + int(rk.wordPre[ch][w]) +
			bits.OnesCount64(c.words[w]&(1<<(low&63)-1))
	}
	return int(rk.chunkPre[ch]) + c.rank(low)
}

// Slice returns the rows ranked [offset, offset+limit) in ascending row
// order — one page of the bitmap. Chunks before the page are skipped by
// their cached cardinality, so paging deep into a large result set
// costs proportional to the page, not the offset. limit < 0 means "to
// the end".
func (b *Bitmap) Slice(offset, limit int) RowSet {
	if offset < 0 {
		offset = 0
	}
	if limit == 0 {
		return RowSet{}
	}
	capHint := limit
	if n := b.Len() - offset; capHint < 0 || capHint > n {
		capHint = n
	}
	if capHint < 0 {
		capHint = 0
	}
	out := make(RowSet, 0, capHint)
	r := 0 // rank of the next row each forEach visit reports
	for i := range b.cs {
		card := int(b.cs[i].card)
		if card == 0 || r+card <= offset {
			r += card
			continue
		}
		if limit >= 0 && r >= offset+limit {
			break
		}
		b.cs[i].forEach(i<<chunkBits, func(v int) {
			if r >= offset && (limit < 0 || r < offset+limit) {
				out = append(out, v)
			}
			r++
		})
	}
	return out
}

// ToRowSet unpacks the bitmap into a sorted unique RowSet.
func (b *Bitmap) ToRowSet() RowSet {
	out := make(RowSet, 0, b.Len())
	b.ForEach(func(row int) { out = append(out, row) })
	return out
}
