package dataset

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// TestSortRowsByValueMatchesComparator pins the radix sort to the
// comparator it replaced: value ascending, ties by row ascending — over
// duplicates, negatives, infinities, and the -0/+0 equality trap, on
// both sides of the small-slice cutoff.
func TestSortRowsByValueMatchesComparator(t *testing.T) {
	pool := []float64{
		0, math.Copysign(0, -1), 1, -1, 2.5, -2.5, 1e300, -1e300,
		math.Inf(1), math.Inf(-1), 42, 42, 3.14,
	}
	for trial := 0; trial < 40; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		n := 1 + rng.Intn(600)
		vals := make([]float64, n)
		for i := range vals {
			if rng.Intn(3) == 0 {
				vals[i] = pool[rng.Intn(len(pool))]
			} else {
				vals[i] = math.Round(rng.NormFloat64()*100) / 4
			}
		}
		got := make([]int32, n)
		want := make([]int32, n)
		for i := range got {
			got[i] = int32(i)
			want[i] = int32(i)
		}
		sort.Slice(want, func(i, j int) bool {
			vi, vj := vals[want[i]], vals[want[j]]
			if vi != vj {
				return vi < vj
			}
			return want[i] < want[j]
		})
		sortRowsByValue(got, vals)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d (n=%d): radix order diverges from comparator\n got %v\nwant %v", trial, n, got, want)
		}
	}
	sortRowsByValue(nil, nil) // empty input must not panic
}

// TestSortFloatsMatchesSortFloat64s checks the value sort against the
// stdlib: ascending with NaNs first, across the radix cutoff.
func TestSortFloatsMatchesSortFloat64s(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) + 99))
		n := rng.Intn(700)
		got := make([]float64, n)
		for i := range got {
			switch rng.Intn(10) {
			case 0:
				got[i] = math.NaN()
			case 1:
				got[i] = math.Inf(1 - 2*rng.Intn(2))
			default:
				got[i] = math.Round(rng.NormFloat64() * 50)
			}
		}
		want := append([]float64(nil), got...)
		sort.Float64s(want)
		sortFloats(got)
		for i := range want {
			if want[i] != got[i] && !(math.IsNaN(want[i]) && math.IsNaN(got[i])) {
				t.Fatalf("trial %d: position %d: got %v, want %v", trial, i, got[i], want[i])
			}
		}
	}
}
