package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"
)

// ReadCSV loads a table from CSV. The first record is the header. Column
// types are inferred: a column is Numeric when every non-empty cell
// parses as a float, Categorical otherwise. Empty numeric cells become
// NaN-free zeros is wrong for analysis, so empty cells force a column to
// Categorical (with the empty string as a value).
func ReadCSV(name string, r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading csv: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("dataset: csv has no header row")
	}
	header := records[0]
	rows := records[1:]
	for i, rec := range rows {
		if len(rec) != len(header) {
			return nil, fmt.Errorf("dataset: csv row %d has %d fields, header has %d", i+2, len(rec), len(header))
		}
	}

	schema := make(Schema, len(header))
	numeric := make([]bool, len(header))
	for c := range header {
		numeric[c] = len(rows) > 0
		for _, rec := range rows {
			if _, err := strconv.ParseFloat(rec[c], 64); err != nil {
				numeric[c] = false
				break
			}
		}
		kind := Categorical
		if numeric[c] {
			kind = Numeric
		}
		schema[c] = Attribute{Name: header[c], Kind: kind, Queriable: true}
	}

	t := NewTable(name, schema)
	for _, rec := range rows {
		vals := make([]any, len(rec))
		for c, cell := range rec {
			if numeric[c] {
				f, _ := strconv.ParseFloat(cell, 64)
				vals[c] = f
			} else {
				vals[c] = cell
			}
		}
		if err := t.AppendRow(vals...); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// ReadCSVFile is ReadCSV over a file path; the table is named after the
// path's base unless name is non-empty.
func ReadCSVFile(name, path string) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	defer f.Close()
	if name == "" {
		name = path
	}
	return ReadCSV(name, f)
}

// WriteCSV writes the full table (header + all rows) as CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.schema.Names()); err != nil {
		return fmt.Errorf("dataset: writing csv header: %w", err)
	}
	rec := make([]string, t.NumCols())
	for r := 0; r < t.NumRows(); r++ {
		for c := range rec {
			rec[c] = t.CellString(r, c)
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("dataset: writing csv row %d: %w", r, err)
		}
	}
	cw.Flush()
	return cw.Error()
}
