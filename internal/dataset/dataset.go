// Package dataset implements the in-memory columnar relational store that
// DBExplorer runs on. A Table holds dictionary-encoded categorical columns
// and float64 numeric columns; query evaluation, facet digests, and CAD
// View construction all operate on a Table plus a RowSet (a selected
// subset of its rows).
//
// The store deliberately favors the access patterns of exploratory
// search: column scans over a row subset, per-column value counting, and
// cheap projection. It is not a general-purpose DBMS, but it is a
// complete, self-contained substrate: tables can be built
// programmatically, loaded from CSV with type inference, filtered with
// expressions (package expr), and summarized (package facet).
package dataset

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Segment geometry: column storage is split into fixed-size 64K-row
// segments, deliberately equal to the Bitmap chunk size (container.go's
// chunkBits) so one storage segment maps to exactly one posting
// container. That alignment is what makes morsel-per-segment builds
// cheap: a worker that scans segment s produces container s of every
// posting it touches, with no cross-segment carry, and the per-segment
// results concatenate (bitmap containers, sorted orders) or add
// (frequencies, contingency cells) into the global answer.
//
// Segments are also the seam for incremental ingest: appends only ever
// touch the last segment, so earlier segments — and every per-segment
// index structure over them — are immutable.
const (
	// SegmentBits is log2 of the rows per storage segment.
	SegmentBits = chunkBits
	// SegmentSize is the number of rows per storage segment (the last
	// segment of a column may be partial).
	SegmentSize = 1 << SegmentBits
	// SegmentMask extracts the segment-local offset from a row id:
	// row == seg<<SegmentBits | off.
	SegmentMask = SegmentSize - 1
)

// NumSegments returns the number of segments covering n rows.
func NumSegments(n int) int { return (n + SegmentMask) >> SegmentBits }

// SegmentRows returns the number of rows segment s holds out of n total
// (SegmentSize for all but possibly the last segment).
func SegmentRows(s, n int) int {
	if lim := n - s<<SegmentBits; lim < SegmentSize {
		return lim
	}
	return SegmentSize
}

// Kind distinguishes the two attribute types DBExplorer understands.
type Kind int

const (
	// Categorical attributes hold string values drawn from a finite
	// domain (Make, Color, odor, ...). They are dictionary encoded.
	Categorical Kind = iota
	// Numeric attributes hold float64 values (Price, Mileage, ...).
	// For CAD View construction they are discretized into bins by
	// package histogram, per the paper's pre-processing step.
	Numeric
)

// String returns "categorical" or "numeric".
func (k Kind) String() string {
	switch k {
	case Categorical:
		return "categorical"
	case Numeric:
		return "numeric"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Attribute describes one column of a Table.
type Attribute struct {
	// Name is the attribute name used in queries (case-sensitive).
	Name string
	// Kind is Categorical or Numeric.
	Kind Kind
	// Queriable marks attributes exposed in the faceted query panel.
	// The paper's Limitation 2 concerns attributes present in the data
	// but not queriable through the interface; the facet package honors
	// this flag while the CAD View ignores it (that is the point).
	Queriable bool
}

// Schema is an ordered list of attributes.
type Schema []Attribute

// Index returns the position of the named attribute, or -1.
func (s Schema) Index(name string) int {
	for i, a := range s {
		if a.Name == name {
			return i
		}
	}
	return -1
}

// Names returns the attribute names in schema order.
func (s Schema) Names() []string {
	names := make([]string, len(s))
	for i, a := range s {
		names[i] = a.Name
	}
	return names
}

// CatColumn is a dictionary-encoded categorical column. Codes index into
// the dictionary (Dict), which preserves first-seen order. Codes are
// stored in fixed-size 64K-row segments (SegmentSize); only the last
// segment ever grows, so earlier segments stay immutable once full.
//
// Appends are safe to run concurrently with readers: the dictionary, the
// segment table, and the row count publish through atomic pointers in
// dict → segs → n order, so a reader that observes n rows is guaranteed
// segment headers covering those rows and dictionary entries for every
// code among them. Writers append new cells into the tail segment's
// spare capacity — past every published length — and then publish a
// fresh copy of the outer segment table, so no published slice header or
// cell is ever mutated in place.
type CatColumn struct {
	dict atomic.Pointer[[]string]  // published dictionary (append-only)
	segs atomic.Pointer[[][]int32] // published segment headers (append-only)
	n    atomic.Int64              // published row count

	mu    sync.Mutex       // serializes appends; guards index
	index map[string]int32 // value → code intern map
}

// NewCatColumn returns an empty categorical column.
func NewCatColumn() *CatColumn {
	c := &CatColumn{index: make(map[string]int32)}
	c.dict.Store(new([]string))
	c.segs.Store(new([][]int32))
	return c
}

// Append adds one value, interning it in the dictionary.
func (c *CatColumn) Append(v string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.appendLocked([]string{v})
}

// appendBatch adds values in order, publishing the new rows once at the
// end (one dictionary/segment-table publication per batch, not per row).
func (c *CatColumn) appendBatch(vals []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.appendLocked(vals)
}

func (c *CatColumn) appendLocked(vals []string) {
	dict := *c.dict.Load()
	dictGrew := false
	codes := make([]int32, len(vals))
	for i, v := range vals {
		code, ok := c.index[v]
		if !ok {
			code = int32(len(dict))
			dict = append(dict, v)
			c.index[v] = code
			dictGrew = true
		}
		codes[i] = code
	}
	if dictGrew {
		d := dict
		c.dict.Store(&d)
	}
	n := int(c.n.Load())
	segs := appendSegmented(*c.segs.Load(), n, codes)
	c.segs.Store(&segs)
	c.n.Store(int64(n + len(vals)))
}

// appendSegmented writes vals after row n into a copy of the outer
// segment table, growing the tail segment (its spare capacity lies past
// every published length, and a reallocating append copies into a
// not-yet-published array, so concurrent readers never see the writes)
// and opening fresh segments as boundaries are crossed.
func appendSegmented[E any](old [][]E, n int, vals []E) [][]E {
	segs := append(make([][]E, 0, NumSegments(n+len(vals))), old...)
	for len(vals) > 0 {
		if n&SegmentMask == 0 {
			segs = append(segs, nil)
		}
		s := len(segs) - 1
		take := SegmentSize - len(segs[s])
		if take > len(vals) {
			take = len(vals)
		}
		segs[s] = append(segs[s], vals[:take]...)
		vals = vals[take:]
		n += take
	}
	return segs
}

// Dict returns the dictionary in code order; callers must not modify it.
func (c *CatColumn) Dict() []string { return *c.dict.Load() }

// Len returns the number of rows stored.
func (c *CatColumn) Len() int { return int(c.n.Load()) }

// Code returns the dictionary code at row i.
func (c *CatColumn) Code(i int) int32 {
	segs := *c.segs.Load()
	return segs[i>>SegmentBits][i&SegmentMask]
}

// NumSegments returns the number of storage segments the column spans.
func (c *CatColumn) NumSegments() int { return len(*c.segs.Load()) }

// SegCodes returns segment s's code slice (segment-local row order);
// callers must not modify it. Morsel scans hoist one segment at a time
// instead of paying the two-level lookup per row.
func (c *CatColumn) SegCodes(s int) []int32 { return (*c.segs.Load())[s] }

// segTable returns the published segment headers; callers hoist it once
// per scan instead of paying an atomic load per segment.
func (c *CatColumn) segTable() [][]int32 { return *c.segs.Load() }

// Codes returns the per-row code array; callers must not modify it.
// Single-segment columns (≤64K rows) return the backing slice directly;
// larger columns materialize a contiguous copy, so hot paths over big
// tables should iterate SegCodes per segment instead.
func (c *CatColumn) Codes() []int32 {
	segs := *c.segs.Load()
	if len(segs) == 1 {
		return segs[0]
	}
	out := make([]int32, 0, c.Len())
	for _, seg := range segs {
		out = append(out, seg...)
	}
	return out
}

// Value returns the string value at row i.
func (c *CatColumn) Value(i int) string { return c.Dict()[c.Code(i)] }

// CodeOf returns the dictionary code for value v, or -1 if v never occurs.
func (c *CatColumn) CodeOf(v string) int32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if code, ok := c.index[v]; ok {
		return code
	}
	return -1
}

// Cardinality returns the number of distinct values seen.
func (c *CatColumn) Cardinality() int { return len(*c.dict.Load()) }

// NumColumn is a dense float64 column stored in fixed-size 64K-row
// segments (SegmentSize); only the last segment ever grows. Appends are
// safe to run concurrently with readers under the same publication
// discipline as CatColumn: cells land past every published length, then
// a fresh copy of the outer segment table and the new row count publish
// atomically, in that order.
type NumColumn struct {
	segs atomic.Pointer[[][]float64] // published segment headers (append-only)
	n    atomic.Int64                // published row count

	mu     sync.Mutex // serializes appends; guards sorted
	sorted []float64  // memoized ascending copy of the values; see Sorted
}

// NewNumColumn returns an empty numeric column.
func NewNumColumn() *NumColumn {
	c := &NumColumn{}
	c.segs.Store(new([][]float64))
	return c
}

// Append adds one value.
func (c *NumColumn) Append(v float64) { c.appendBatch([]float64{v}) }

// appendBatch adds values in order, publishing the new rows once at the
// end.
func (c *NumColumn) appendBatch(vals []float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := int(c.n.Load())
	segs := appendSegmented(*c.segs.Load(), n, vals)
	c.segs.Store(&segs)
	c.n.Store(int64(n + len(vals)))
}

// Len returns the number of rows stored.
func (c *NumColumn) Len() int { return int(c.n.Load()) }

// Value returns the value at row i.
func (c *NumColumn) Value(i int) float64 {
	segs := *c.segs.Load()
	return segs[i>>SegmentBits][i&SegmentMask]
}

// NumSegments returns the number of storage segments the column spans.
func (c *NumColumn) NumSegments() int { return len(*c.segs.Load()) }

// SegValues returns segment s's value slice (segment-local row order);
// callers must not modify it.
func (c *NumColumn) SegValues(s int) []float64 { return (*c.segs.Load())[s] }

// segTable returns the published segment headers; callers hoist it once
// per scan instead of paying an atomic load per segment.
func (c *NumColumn) segTable() [][]float64 { return *c.segs.Load() }

// Values returns the per-row value array; callers must not modify it.
// Single-segment columns (≤64K rows) return the backing slice directly;
// larger columns materialize a contiguous copy, so hot paths over big
// tables should iterate SegValues per segment instead.
func (c *NumColumn) Values() []float64 {
	segs := *c.segs.Load()
	if len(segs) == 1 {
		return segs[0]
	}
	out := make([]float64, 0, c.Len())
	for _, seg := range segs {
		out = append(out, seg...)
	}
	return out
}

// Sorted returns the column values in ascending order; callers must not
// modify the result. The sorted copy is memoized so repeated binning of
// the same column (every view built over the table) sorts at most once;
// the cache is refreshed if rows were appended since the last call.
func (c *NumColumn) Sorted() []float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := int(c.n.Load())
	if len(c.sorted) != n {
		sorted := make([]float64, 0, n)
		for _, seg := range *c.segs.Load() {
			sorted = append(sorted, seg...)
		}
		sortFloats(sorted)
		c.sorted = sorted
	}
	return c.sorted
}

// Table is a named relation with columnar storage. Appends are safe to
// run concurrently with readers: columns publish their new cells before
// the table publishes the new row count, so a reader that observes n
// rows finds every column covering them; an in-flight query that took an
// Index snapshot keeps evaluating over the rows that snapshot covers.
type Table struct {
	name   string
	schema Schema
	cats   []*CatColumn // indexed by column position; nil for numeric
	nums   []*NumColumn // indexed by column position; nil for categorical
	n      atomic.Int64
	epoch  atomic.Uint64 // bumped once per successful append; see Epoch

	appendMu sync.Mutex // serializes AppendRow/AppendBatch
	idxMu    sync.Mutex
	idx      *Index // lazily built posting index; see Table.Index
}

// NewTable creates an empty table with the given schema.
func NewTable(name string, schema Schema) *Table {
	t := &Table{
		name:   name,
		schema: append(Schema(nil), schema...),
		cats:   make([]*CatColumn, len(schema)),
		nums:   make([]*NumColumn, len(schema)),
	}
	for i, a := range schema {
		if a.Kind == Categorical {
			t.cats[i] = NewCatColumn()
		} else {
			t.nums[i] = NewNumColumn()
		}
	}
	return t
}

// ResetIndex drops the table's cached posting index so the next Index
// call starts empty. Postings and sorted orders rebuild lazily on first
// use; existing *Index handles keep working over their snapshot. Use it
// to release index memory for a table that will not be queried again
// soon, or to force a cold build in measurements.
func (t *Table) ResetIndex() {
	t.idxMu.Lock()
	t.idx = nil
	t.idxMu.Unlock()
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema. Callers must not modify it.
func (t *Table) Schema() Schema { return t.schema }

// NumRows returns the number of rows.
func (t *Table) NumRows() int { return int(t.n.Load()) }

// Epoch returns the table's append epoch: 0 for a table that has never
// been appended to since caches first observed it, +1 per successful
// AppendRow or AppendBatch. Caches key derived structures (compiled
// predicate binds, view postings, CAD View cache entries, suggestion
// models) on it to detect rows arriving underneath them. The epoch is
// bumped after the new row count publishes, so a reader that loads the
// epoch first and the row count second never associates an epoch with
// rows it cannot see.
func (t *Table) Epoch() uint64 { return t.epoch.Load() }

// NumCols returns the number of columns.
func (t *Table) NumCols() int { return len(t.schema) }

// ColIndex returns the position of the named column, or -1.
func (t *Table) ColIndex(name string) int { return t.schema.Index(name) }

// Cat returns the categorical column at position col, or nil if the
// column is numeric.
func (t *Table) Cat(col int) *CatColumn { return t.cats[col] }

// Num returns the numeric column at position col, or nil if the column
// is categorical.
func (t *Table) Num(col int) *NumColumn { return t.nums[col] }

// CatByName returns the named categorical column, or an error if the
// column is missing or numeric.
func (t *Table) CatByName(name string) (*CatColumn, error) {
	i := t.ColIndex(name)
	if i < 0 {
		return nil, fmt.Errorf("dataset: table %q has no column %q", t.name, name)
	}
	if t.cats[i] == nil {
		return nil, fmt.Errorf("dataset: column %q of table %q is numeric, not categorical", name, t.name)
	}
	return t.cats[i], nil
}

// NumByName returns the named numeric column, or an error if the column
// is missing or categorical.
func (t *Table) NumByName(name string) (*NumColumn, error) {
	i := t.ColIndex(name)
	if i < 0 {
		return nil, fmt.Errorf("dataset: table %q has no column %q", t.name, name)
	}
	if t.nums[i] == nil {
		return nil, fmt.Errorf("dataset: column %q of table %q is categorical, not numeric", name, t.name)
	}
	return t.nums[i], nil
}

// checkRow validates one row against the schema without mutating
// anything, returning the numeric cells converted to float64 (the slot
// for categorical cells is unused). Append paths run it over every row
// before touching any column, so a type error leaves the table exactly
// as it was — no column ends up one cell longer than its siblings.
func (t *Table) checkRow(vals []any) ([]float64, error) {
	if len(vals) != len(t.schema) {
		return nil, fmt.Errorf("dataset: append got %d values for %d columns", len(vals), len(t.schema))
	}
	nums := make([]float64, len(vals))
	for i, v := range vals {
		switch a := t.schema[i]; a.Kind {
		case Categorical:
			if _, ok := v.(string); !ok {
				return nil, fmt.Errorf("dataset: column %q wants string, got %T", a.Name, v)
			}
		case Numeric:
			switch x := v.(type) {
			case float64:
				nums[i] = x
			case int:
				nums[i] = float64(x)
			default:
				return nil, fmt.Errorf("dataset: column %q wants float64, got %T", a.Name, v)
			}
		}
	}
	return nums, nil
}

// AppendRow adds one row. vals must have one entry per column: string
// for categorical columns, float64 (or int) for numeric columns. The row
// is validated in full before any column is touched; on error the table
// is unmodified.
func (t *Table) AppendRow(vals ...any) error {
	nums, err := t.checkRow(vals)
	if err != nil {
		return err
	}
	t.appendMu.Lock()
	defer t.appendMu.Unlock()
	for i, v := range vals {
		if t.cats[i] != nil {
			t.cats[i].Append(v.(string))
		} else {
			t.nums[i].Append(nums[i])
		}
	}
	t.n.Add(1)
	t.epoch.Add(1)
	return nil
}

// AppendBatch adds rows in order, each with one entry per column (the
// AppendRow conventions). The whole batch is validated before any column
// is touched — on error the table is unmodified — and the new rows
// publish column by column, with the row count and epoch bumped once at
// the end, so the batch costs one segment-table publication per column
// instead of one per cell. Readers are never blocked: an in-flight query
// keeps its Index snapshot, and the next Table.Index call extends the
// index over the new tail rows (see Index).
func (t *Table) AppendBatch(rows [][]any) error {
	if len(rows) == 0 {
		return nil
	}
	numVals := make([][]float64, len(rows))
	for r, row := range rows {
		nums, err := t.checkRow(row)
		if err != nil {
			return fmt.Errorf("row %d: %w", r, err)
		}
		numVals[r] = nums
	}
	t.appendMu.Lock()
	defer t.appendMu.Unlock()
	for i := range t.schema {
		if c := t.cats[i]; c != nil {
			vals := make([]string, len(rows))
			for r, row := range rows {
				vals[r] = row[i].(string)
			}
			c.appendBatch(vals)
		} else {
			vals := make([]float64, len(rows))
			for r := range rows {
				vals[r] = numVals[r][i]
			}
			t.nums[i].appendBatch(vals)
		}
	}
	t.n.Add(int64(len(rows)))
	t.epoch.Add(1)
	return nil
}

// MustAppendRow is AppendRow that panics on error; intended for
// generators and tests where the schema is statically known.
func (t *Table) MustAppendRow(vals ...any) {
	if err := t.AppendRow(vals...); err != nil {
		panic(err)
	}
}

// CellString renders the cell at (row, col) as a string: the dictionary
// value for categorical columns, %g formatting for numeric columns.
func (t *Table) CellString(row, col int) string {
	if c := t.cats[col]; c != nil {
		return c.Value(row)
	}
	return fmt.Sprintf("%g", t.nums[col].Value(row))
}

// DistinctValues returns the distinct values of a categorical column
// restricted to rows, ordered by descending frequency (ties broken by
// dictionary order).
func (t *Table) DistinctValues(col int, rows RowSet) []string {
	c := t.cats[col]
	if c == nil {
		return nil
	}
	counts := t.ValueCounts(col, rows)
	out := make([]string, 0, len(counts))
	for _, vc := range counts {
		out = append(out, vc.Value)
	}
	return out
}

// ValueCount is one (value, frequency) pair of a column over a row set.
type ValueCount struct {
	Value string
	Count int
}

// ValueCounts returns per-value frequencies of a categorical column over
// rows, sorted by descending count then ascending value.
func (t *Table) ValueCounts(col int, rows RowSet) []ValueCount {
	c := t.cats[col]
	if c == nil {
		return nil
	}
	counts := make([]int, c.Cardinality())
	for _, r := range rows {
		counts[c.Code(r)]++
	}
	dict := c.Dict()
	out := make([]ValueCount, 0, len(counts))
	for code, n := range counts {
		if n > 0 {
			out = append(out, ValueCount{Value: dict[code], Count: n})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Value < out[j].Value
	})
	return out
}

// CodeCounts returns frequencies indexed by dictionary code for a
// categorical column over rows.
func (t *Table) CodeCounts(col int, rows RowSet) []int {
	c := t.cats[col]
	if c == nil {
		return nil
	}
	counts := make([]int, c.Cardinality())
	for _, r := range rows {
		counts[c.Code(r)]++
	}
	return counts
}
