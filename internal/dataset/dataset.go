// Package dataset implements the in-memory columnar relational store that
// DBExplorer runs on. A Table holds dictionary-encoded categorical columns
// and float64 numeric columns; query evaluation, facet digests, and CAD
// View construction all operate on a Table plus a RowSet (a selected
// subset of its rows).
//
// The store deliberately favors the access patterns of exploratory
// search: column scans over a row subset, per-column value counting, and
// cheap projection. It is not a general-purpose DBMS, but it is a
// complete, self-contained substrate: tables can be built
// programmatically, loaded from CSV with type inference, filtered with
// expressions (package expr), and summarized (package facet).
package dataset

import (
	"fmt"
	"sort"
	"sync"
)

// Segment geometry: column storage is split into fixed-size 64K-row
// segments, deliberately equal to the Bitmap chunk size (container.go's
// chunkBits) so one storage segment maps to exactly one posting
// container. That alignment is what makes morsel-per-segment builds
// cheap: a worker that scans segment s produces container s of every
// posting it touches, with no cross-segment carry, and the per-segment
// results concatenate (bitmap containers, sorted orders) or add
// (frequencies, contingency cells) into the global answer.
//
// Segments are also the seam for incremental ingest: appends only ever
// touch the last segment, so earlier segments — and every per-segment
// index structure over them — are immutable.
const (
	// SegmentBits is log2 of the rows per storage segment.
	SegmentBits = chunkBits
	// SegmentSize is the number of rows per storage segment (the last
	// segment of a column may be partial).
	SegmentSize = 1 << SegmentBits
	// SegmentMask extracts the segment-local offset from a row id:
	// row == seg<<SegmentBits | off.
	SegmentMask = SegmentSize - 1
)

// NumSegments returns the number of segments covering n rows.
func NumSegments(n int) int { return (n + SegmentMask) >> SegmentBits }

// SegmentRows returns the number of rows segment s holds out of n total
// (SegmentSize for all but possibly the last segment).
func SegmentRows(s, n int) int {
	if lim := n - s<<SegmentBits; lim < SegmentSize {
		return lim
	}
	return SegmentSize
}

// Kind distinguishes the two attribute types DBExplorer understands.
type Kind int

const (
	// Categorical attributes hold string values drawn from a finite
	// domain (Make, Color, odor, ...). They are dictionary encoded.
	Categorical Kind = iota
	// Numeric attributes hold float64 values (Price, Mileage, ...).
	// For CAD View construction they are discretized into bins by
	// package histogram, per the paper's pre-processing step.
	Numeric
)

// String returns "categorical" or "numeric".
func (k Kind) String() string {
	switch k {
	case Categorical:
		return "categorical"
	case Numeric:
		return "numeric"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Attribute describes one column of a Table.
type Attribute struct {
	// Name is the attribute name used in queries (case-sensitive).
	Name string
	// Kind is Categorical or Numeric.
	Kind Kind
	// Queriable marks attributes exposed in the faceted query panel.
	// The paper's Limitation 2 concerns attributes present in the data
	// but not queriable through the interface; the facet package honors
	// this flag while the CAD View ignores it (that is the point).
	Queriable bool
}

// Schema is an ordered list of attributes.
type Schema []Attribute

// Index returns the position of the named attribute, or -1.
func (s Schema) Index(name string) int {
	for i, a := range s {
		if a.Name == name {
			return i
		}
	}
	return -1
}

// Names returns the attribute names in schema order.
func (s Schema) Names() []string {
	names := make([]string, len(s))
	for i, a := range s {
		names[i] = a.Name
	}
	return names
}

// CatColumn is a dictionary-encoded categorical column. Codes index into
// Dict; the dictionary preserves first-seen order. Codes are stored in
// fixed-size 64K-row segments (SegmentSize); only the last segment ever
// grows, so earlier segments stay immutable once full.
type CatColumn struct {
	Dict  []string
	segs  [][]int32
	n     int
	index map[string]int32
}

// NewCatColumn returns an empty categorical column.
func NewCatColumn() *CatColumn {
	return &CatColumn{index: make(map[string]int32)}
}

// Append adds one value, interning it in the dictionary.
func (c *CatColumn) Append(v string) {
	code, ok := c.index[v]
	if !ok {
		code = int32(len(c.Dict))
		c.Dict = append(c.Dict, v)
		c.index[v] = code
	}
	if c.n&SegmentMask == 0 {
		c.segs = append(c.segs, nil)
	}
	s := len(c.segs) - 1
	c.segs[s] = append(c.segs[s], code)
	c.n++
}

// Len returns the number of rows stored.
func (c *CatColumn) Len() int { return c.n }

// Code returns the dictionary code at row i.
func (c *CatColumn) Code(i int) int32 { return c.segs[i>>SegmentBits][i&SegmentMask] }

// NumSegments returns the number of storage segments the column spans.
func (c *CatColumn) NumSegments() int { return len(c.segs) }

// SegCodes returns segment s's code slice (segment-local row order);
// callers must not modify it. Morsel scans hoist one segment at a time
// instead of paying the two-level lookup per row.
func (c *CatColumn) SegCodes(s int) []int32 { return c.segs[s] }

// Codes returns the per-row code array; callers must not modify it.
// Single-segment columns (≤64K rows) return the backing slice directly;
// larger columns materialize a contiguous copy, so hot paths over big
// tables should iterate SegCodes per segment instead.
func (c *CatColumn) Codes() []int32 {
	if len(c.segs) == 1 {
		return c.segs[0]
	}
	out := make([]int32, 0, c.n)
	for _, seg := range c.segs {
		out = append(out, seg...)
	}
	return out
}

// Value returns the string value at row i.
func (c *CatColumn) Value(i int) string { return c.Dict[c.Code(i)] }

// CodeOf returns the dictionary code for value v, or -1 if v never occurs.
func (c *CatColumn) CodeOf(v string) int32 {
	if code, ok := c.index[v]; ok {
		return code
	}
	return -1
}

// Cardinality returns the number of distinct values seen.
func (c *CatColumn) Cardinality() int { return len(c.Dict) }

// NumColumn is a dense float64 column stored in fixed-size 64K-row
// segments (SegmentSize); only the last segment ever grows.
type NumColumn struct {
	segs [][]float64
	n    int

	mu     sync.Mutex
	sorted []float64 // memoized ascending copy of the values; see Sorted
}

// NewNumColumn returns an empty numeric column.
func NewNumColumn() *NumColumn { return &NumColumn{} }

// Append adds one value.
func (c *NumColumn) Append(v float64) {
	if c.n&SegmentMask == 0 {
		c.segs = append(c.segs, nil)
	}
	s := len(c.segs) - 1
	c.segs[s] = append(c.segs[s], v)
	c.n++
}

// Len returns the number of rows stored.
func (c *NumColumn) Len() int { return c.n }

// Value returns the value at row i.
func (c *NumColumn) Value(i int) float64 { return c.segs[i>>SegmentBits][i&SegmentMask] }

// NumSegments returns the number of storage segments the column spans.
func (c *NumColumn) NumSegments() int { return len(c.segs) }

// SegValues returns segment s's value slice (segment-local row order);
// callers must not modify it.
func (c *NumColumn) SegValues(s int) []float64 { return c.segs[s] }

// Values returns the per-row value array; callers must not modify it.
// Single-segment columns (≤64K rows) return the backing slice directly;
// larger columns materialize a contiguous copy, so hot paths over big
// tables should iterate SegValues per segment instead.
func (c *NumColumn) Values() []float64 {
	if len(c.segs) == 1 {
		return c.segs[0]
	}
	out := make([]float64, 0, c.n)
	for _, seg := range c.segs {
		out = append(out, seg...)
	}
	return out
}

// Sorted returns the column values in ascending order; callers must not
// modify the result. The sorted copy is memoized so repeated binning of
// the same column (every view built over the table) sorts at most once;
// the cache is refreshed if rows were appended since the last call.
func (c *NumColumn) Sorted() []float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.sorted) != c.n {
		sorted := make([]float64, 0, c.n)
		for _, seg := range c.segs {
			sorted = append(sorted, seg...)
		}
		sortFloats(sorted)
		c.sorted = sorted
	}
	return c.sorted
}

// Table is a named relation with columnar storage.
type Table struct {
	name   string
	schema Schema
	cats   []*CatColumn // indexed by column position; nil for numeric
	nums   []*NumColumn // indexed by column position; nil for categorical
	n      int

	idxMu sync.Mutex
	idx   *Index // lazily built posting index; see Table.Index
}

// NewTable creates an empty table with the given schema.
func NewTable(name string, schema Schema) *Table {
	t := &Table{
		name:   name,
		schema: append(Schema(nil), schema...),
		cats:   make([]*CatColumn, len(schema)),
		nums:   make([]*NumColumn, len(schema)),
	}
	for i, a := range schema {
		if a.Kind == Categorical {
			t.cats[i] = NewCatColumn()
		} else {
			t.nums[i] = NewNumColumn()
		}
	}
	return t
}

// ResetIndex drops the table's cached posting index so the next Index
// call starts empty. Postings and sorted orders rebuild lazily on first
// use; existing *Index handles keep working over their snapshot. Use it
// to release index memory for a table that will not be queried again
// soon, or to force a cold build in measurements.
func (t *Table) ResetIndex() {
	t.idxMu.Lock()
	t.idx = nil
	t.idxMu.Unlock()
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema. Callers must not modify it.
func (t *Table) Schema() Schema { return t.schema }

// NumRows returns the number of rows.
func (t *Table) NumRows() int { return t.n }

// NumCols returns the number of columns.
func (t *Table) NumCols() int { return len(t.schema) }

// ColIndex returns the position of the named column, or -1.
func (t *Table) ColIndex(name string) int { return t.schema.Index(name) }

// Cat returns the categorical column at position col, or nil if the
// column is numeric.
func (t *Table) Cat(col int) *CatColumn { return t.cats[col] }

// Num returns the numeric column at position col, or nil if the column
// is categorical.
func (t *Table) Num(col int) *NumColumn { return t.nums[col] }

// CatByName returns the named categorical column, or an error if the
// column is missing or numeric.
func (t *Table) CatByName(name string) (*CatColumn, error) {
	i := t.ColIndex(name)
	if i < 0 {
		return nil, fmt.Errorf("dataset: table %q has no column %q", t.name, name)
	}
	if t.cats[i] == nil {
		return nil, fmt.Errorf("dataset: column %q of table %q is numeric, not categorical", name, t.name)
	}
	return t.cats[i], nil
}

// NumByName returns the named numeric column, or an error if the column
// is missing or categorical.
func (t *Table) NumByName(name string) (*NumColumn, error) {
	i := t.ColIndex(name)
	if i < 0 {
		return nil, fmt.Errorf("dataset: table %q has no column %q", t.name, name)
	}
	if t.nums[i] == nil {
		return nil, fmt.Errorf("dataset: column %q of table %q is categorical, not numeric", name, t.name)
	}
	return t.nums[i], nil
}

// AppendRow adds one row. vals must have one entry per column: string for
// categorical columns, float64 (or int) for numeric columns.
func (t *Table) AppendRow(vals ...any) error {
	if len(vals) != len(t.schema) {
		return fmt.Errorf("dataset: AppendRow got %d values for %d columns", len(vals), len(t.schema))
	}
	for i, v := range vals {
		switch a := t.schema[i]; a.Kind {
		case Categorical:
			s, ok := v.(string)
			if !ok {
				return fmt.Errorf("dataset: column %q wants string, got %T", a.Name, v)
			}
			t.cats[i].Append(s)
		case Numeric:
			switch x := v.(type) {
			case float64:
				t.nums[i].Append(x)
			case int:
				t.nums[i].Append(float64(x))
			default:
				return fmt.Errorf("dataset: column %q wants float64, got %T", a.Name, v)
			}
		}
	}
	t.n++
	return nil
}

// MustAppendRow is AppendRow that panics on error; intended for
// generators and tests where the schema is statically known.
func (t *Table) MustAppendRow(vals ...any) {
	if err := t.AppendRow(vals...); err != nil {
		panic(err)
	}
}

// CellString renders the cell at (row, col) as a string: the dictionary
// value for categorical columns, %g formatting for numeric columns.
func (t *Table) CellString(row, col int) string {
	if c := t.cats[col]; c != nil {
		return c.Value(row)
	}
	return fmt.Sprintf("%g", t.nums[col].Value(row))
}

// DistinctValues returns the distinct values of a categorical column
// restricted to rows, ordered by descending frequency (ties broken by
// dictionary order).
func (t *Table) DistinctValues(col int, rows RowSet) []string {
	c := t.cats[col]
	if c == nil {
		return nil
	}
	counts := t.ValueCounts(col, rows)
	out := make([]string, 0, len(counts))
	for _, vc := range counts {
		out = append(out, vc.Value)
	}
	return out
}

// ValueCount is one (value, frequency) pair of a column over a row set.
type ValueCount struct {
	Value string
	Count int
}

// ValueCounts returns per-value frequencies of a categorical column over
// rows, sorted by descending count then ascending value.
func (t *Table) ValueCounts(col int, rows RowSet) []ValueCount {
	c := t.cats[col]
	if c == nil {
		return nil
	}
	counts := make([]int, c.Cardinality())
	for _, r := range rows {
		counts[c.Code(r)]++
	}
	out := make([]ValueCount, 0, len(counts))
	for code, n := range counts {
		if n > 0 {
			out = append(out, ValueCount{Value: c.Dict[code], Count: n})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Value < out[j].Value
	})
	return out
}

// CodeCounts returns frequencies indexed by dictionary code for a
// categorical column over rows.
func (t *Table) CodeCounts(col int, rows RowSet) []int {
	c := t.cats[col]
	if c == nil {
		return nil
	}
	counts := make([]int, c.Cardinality())
	for _, r := range rows {
		counts[c.Code(r)]++
	}
	return counts
}
