package dataset

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// randRowSet converts arbitrary quick-generated ints into a valid RowSet
// (sorted, unique, non-negative, bounded).
func randRowSet(raw []uint16) RowSet {
	seen := make(map[int]bool)
	for _, v := range raw {
		seen[int(v)%200] = true
	}
	out := make(RowSet, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

func toSet(r RowSet) map[int]bool {
	m := make(map[int]bool, len(r))
	for _, v := range r {
		m[v] = true
	}
	return m
}

func isSortedUnique(r RowSet) bool {
	for i := 1; i < len(r); i++ {
		if r[i] <= r[i-1] {
			return false
		}
	}
	return true
}

func TestAllRows(t *testing.T) {
	r := AllRows(4)
	if r.Len() != 4 || r[0] != 0 || r[3] != 3 {
		t.Errorf("AllRows(4) = %v", r)
	}
	if AllRows(0).Len() != 0 {
		t.Error("AllRows(0) not empty")
	}
}

func TestRowSetBasicOps(t *testing.T) {
	a := RowSet{1, 3, 5, 7}
	b := RowSet{3, 4, 5}
	if got := a.Intersect(b); len(got) != 2 || got[0] != 3 || got[1] != 5 {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Union(b); len(got) != 5 {
		t.Errorf("Union = %v", got)
	}
	if got := a.Minus(b); len(got) != 2 || got[0] != 1 || got[1] != 7 {
		t.Errorf("Minus = %v", got)
	}
	if !a.Contains(5) || a.Contains(6) {
		t.Error("Contains wrong")
	}
	if got := a.Filter(func(r int) bool { return r > 3 }); len(got) != 2 {
		t.Errorf("Filter = %v", got)
	}
	c := a.Clone()
	c[0] = 99
	if a[0] == 99 {
		t.Error("Clone aliases original")
	}
}

func TestJaccard(t *testing.T) {
	a := RowSet{1, 2, 3}
	b := RowSet{2, 3, 4}
	if got := a.Jaccard(b); got != 0.5 {
		t.Errorf("Jaccard = %g, want 0.5", got)
	}
	if got := (RowSet{}).Jaccard(RowSet{}); got != 1 {
		t.Errorf("Jaccard of empties = %g, want 1", got)
	}
	if got := a.Jaccard(RowSet{}); got != 0 {
		t.Errorf("Jaccard vs empty = %g, want 0", got)
	}
	if got := a.Jaccard(a); got != 1 {
		t.Errorf("self Jaccard = %g, want 1", got)
	}
}

// Property: set operations agree with their map-based definitions and
// preserve the sorted-unique invariant.
func TestRowSetOpsProperty(t *testing.T) {
	f := func(rawA, rawB []uint16) bool {
		a, b := randRowSet(rawA), randRowSet(rawB)
		inter, union, minus := a.Intersect(b), a.Union(b), a.Minus(b)
		if !isSortedUnique(inter) || !isSortedUnique(union) || !isSortedUnique(minus) {
			return false
		}
		sa, sb := toSet(a), toSet(b)
		for _, v := range inter {
			if !sa[v] || !sb[v] {
				return false
			}
		}
		for v := range sa {
			inBoth := sb[v]
			if inBoth != inter.Contains(v) {
				return false
			}
			if !union.Contains(v) {
				return false
			}
			if minus.Contains(v) == inBoth {
				return false
			}
		}
		for v := range sb {
			if !union.Contains(v) {
				return false
			}
		}
		// |A| + |B| = |A∪B| + |A∩B|
		return len(a)+len(b) == len(union)+len(inter)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Jaccard is symmetric and within [0,1].
func TestJaccardProperty(t *testing.T) {
	f := func(rawA, rawB []uint16) bool {
		a, b := randRowSet(rawA), randRowSet(rawB)
		j1, j2 := a.Jaccard(b), b.Jaccard(a)
		return j1 == j2 && j1 >= 0 && j1 <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkRowSetIntersect(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	mk := func(n, max int) RowSet {
		seen := map[int]bool{}
		for len(seen) < n {
			seen[rng.Intn(max)] = true
		}
		out := make(RowSet, 0, n)
		for v := range seen {
			out = append(out, v)
		}
		sort.Ints(out)
		return out
	}
	x, y := mk(10000, 40000), mk(10000, 40000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Intersect(y)
	}
}
