package dataset

import (
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// toRowSet maps arbitrary raw values into a sorted unique RowSet over
// universe n — the canonical form both representations promise.
func toRowSet(raw []uint16, n int) RowSet {
	seen := make(map[int]bool)
	for _, v := range raw {
		seen[int(v)%n] = true
	}
	out := make(RowSet, 0, len(seen))
	for r := range seen {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}

// universe sizes deliberately straddle word boundaries: exact multiples
// of 64, off-by-one around them, and a single partial word.
func universeOf(pick uint8) int {
	sizes := []int{1, 37, 63, 64, 65, 128, 200, 1000}
	return sizes[int(pick)%len(sizes)]
}

// TestBitmapRowSetRoundTrip is the lossless-conversion property:
// FromRowSet then ToRowSet returns the original sorted unique rows for
// every random set and universe.
func TestBitmapRowSetRoundTrip(t *testing.T) {
	f := func(raw []uint16, pick uint8) bool {
		n := universeOf(pick)
		rows := toRowSet(raw, n)
		got := FromRowSet(n, rows).ToRowSet()
		return reflect.DeepEqual(got, rows)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestBitmapSetOpsAgree pins every bitmap operation to the merge-based
// RowSet equivalent on random sets: And↔Intersect, Or↔Union,
// AndNot↔Minus, plus Len, Contains, and Not against a scan.
func TestBitmapSetOpsAgree(t *testing.T) {
	f := func(rawA, rawB []uint16, pick uint8) bool {
		n := universeOf(pick)
		a, b := toRowSet(rawA, n), toRowSet(rawB, n)
		ba, bb := FromRowSet(n, a), FromRowSet(n, b)

		if !reflect.DeepEqual(ba.And(bb).ToRowSet(), a.Intersect(b)) {
			return false
		}
		if !reflect.DeepEqual(ba.Or(bb).ToRowSet(), a.Union(b)) {
			return false
		}
		if !reflect.DeepEqual(ba.AndNot(bb).ToRowSet(), a.Minus(b)) {
			return false
		}
		if ba.Len() != len(a) || bb.Len() != len(b) {
			return false
		}
		if ba.AndLen(bb) != len(a.Intersect(b)) {
			return false
		}
		if !reflect.DeepEqual(ba.Not().ToRowSet(), AllRows(n).Minus(a)) {
			return false
		}
		// RowSet.Contains is false outside the universe too, so the two
		// implementations must agree on every probe.
		for _, probe := range []int{-1, 0, n - 1, n, n + 63} {
			if ba.Contains(probe) != a.Contains(probe) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestBitmapInPlaceOpsAgree checks the allocating and in-place variants
// produce the same sets.
func TestBitmapInPlaceOpsAgree(t *testing.T) {
	f := func(rawA, rawB []uint16, pick uint8) bool {
		n := universeOf(pick)
		a, b := toRowSet(rawA, n), toRowSet(rawB, n)
		ba, bb := FromRowSet(n, a), FromRowSet(n, b)
		if !reflect.DeepEqual(ba.Clone().AndWith(bb).ToRowSet(), ba.And(bb).ToRowSet()) {
			return false
		}
		return reflect.DeepEqual(ba.Clone().OrWith(bb).ToRowSet(), ba.Or(bb).ToRowSet())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBitmapFullAndTailMasking(t *testing.T) {
	for _, n := range []int{1, 63, 64, 65, 127, 129} {
		full := FullBitmap(n)
		if full.Len() != n {
			t.Fatalf("FullBitmap(%d).Len() = %d", n, full.Len())
		}
		// Complement of full is empty even when the last word is partial.
		if got := full.Not().Len(); got != 0 {
			t.Fatalf("FullBitmap(%d).Not().Len() = %d, want 0", n, got)
		}
		empty := NewBitmap(n)
		if got := empty.Not().Len(); got != n {
			t.Fatalf("NewBitmap(%d).Not().Len() = %d, want %d", n, got, n)
		}
	}
}

func TestBitmapForEachAscending(t *testing.T) {
	rows := RowSet{0, 3, 63, 64, 65, 190}
	b := FromRowSet(200, rows)
	var got RowSet
	b.ForEach(func(r int) { got = append(got, r) })
	if !reflect.DeepEqual(got, rows) {
		t.Fatalf("ForEach visited %v, want %v", got, rows)
	}
}

func TestBitmapUniverseMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("And across universes did not panic")
		}
	}()
	NewBitmap(64).And(NewBitmap(128))
}
