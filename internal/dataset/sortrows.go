package dataset

import (
	"math"
	"sort"
)

// sortRowsByValue sorts rows ascending by vals[row], equal values by row
// ascending, using a stable LSD radix sort over the order-preserving bit
// pattern of the keys. rows must already be in ascending row order (the
// stability of the passes then yields the row tie-break for free) and
// must not reference NaN cells. This replaces a closure-based
// sort.Slice whose double indirection dominated first-query latency on
// large tables.
func sortRowsByValue(rows []int32, vals []float64) {
	n := len(rows)
	if n < 128 {
		// Insertion sort: cheaper than building key arrays, and stable.
		for i := 1; i < n; i++ {
			r := rows[i]
			v := vals[r]
			j := i - 1
			for j >= 0 && vals[rows[j]] > v {
				rows[j+1] = rows[j]
				j--
			}
			rows[j+1] = r
		}
		return
	}
	keys := make([]uint64, n)
	for i, row := range rows {
		keys[i] = orderedFloatBits(vals[row])
	}
	tmpK := make([]uint64, n)
	tmpR := make([]int32, n)
	src, dst := rows, tmpR
	srcK, dstK := keys, tmpK
	var count [256]int
	for shift := uint(0); shift < 64; shift += 8 {
		for i := range count {
			count[i] = 0
		}
		for _, k := range srcK {
			count[byte(k>>shift)]++
		}
		if count[byte(srcK[0]>>shift)] == n {
			continue // every key shares this byte; the pass is a no-op
		}
		pos := 0
		for i, c := range count {
			count[i] = pos
			pos += c
		}
		for i, k := range srcK {
			b := byte(k >> shift)
			d := count[b]
			count[b]++
			dstK[d] = k
			dst[d] = src[i]
		}
		src, dst = dst, src
		srcK, dstK = dstK, srcK
	}
	if &src[0] != &rows[0] {
		copy(rows, src)
	}
}

// orderedFloatBits maps a non-NaN float to a uint64 whose unsigned order
// matches float order, with -0 and +0 mapped to the same key so that
// rows holding either sort purely by row index — exactly the tie-break
// of the comparator this sort replaces.
func orderedFloatBits(v float64) uint64 {
	b := math.Float64bits(v)
	if b == 1<<63 { // -0.0: compares equal to +0.0, must share its key
		b = 0
	}
	if b&(1<<63) != 0 {
		return ^b
	}
	return b | 1<<63
}

// sortFloats sorts s ascending with NaNs first — sort.Float64s' order —
// by LSD radix passes over the order-preserving (and here invertible,
// so -0 survives) bit transform. Numeric binning sorts each column once
// per table; on wide tables that sort dominated first-view latency.
func sortFloats(s []float64) {
	nan := 0
	for i, v := range s {
		if math.IsNaN(v) {
			s[i] = s[nan]
			s[nan] = v
			nan++
		}
	}
	rest := s[nan:]
	n := len(rest)
	if n < 256 {
		sort.Float64s(rest)
		return
	}
	keys := make([]uint64, n)
	for i, v := range rest {
		b := math.Float64bits(v)
		if b&(1<<63) != 0 {
			b = ^b
		} else {
			b |= 1 << 63
		}
		keys[i] = b
	}
	tmp := make([]uint64, n)
	src, dst := keys, tmp
	var count [256]int
	for shift := uint(0); shift < 64; shift += 8 {
		for i := range count {
			count[i] = 0
		}
		for _, k := range src {
			count[byte(k>>shift)]++
		}
		if count[byte(src[0]>>shift)] == n {
			continue
		}
		pos := 0
		for i, c := range count {
			count[i] = pos
			pos += c
		}
		for _, k := range src {
			b := byte(k >> shift)
			dst[count[b]] = k
			count[b]++
		}
		src, dst = dst, src
	}
	for i, k := range src {
		if k&(1<<63) != 0 {
			k ^= 1 << 63
		} else {
			k = ^k
		}
		rest[i] = math.Float64frombits(k)
	}
}
