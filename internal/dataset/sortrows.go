package dataset

import (
	"math"
	"sort"
)

// sortRowsByValue sorts rows ascending by vals[row], equal values by row
// ascending, using a stable LSD radix sort over the order-preserving bit
// pattern of the keys. rows must already be in ascending row order (the
// stability of the passes then yields the row tie-break for free) and
// must not reference NaN cells. This replaces a closure-based
// sort.Slice whose double indirection dominated first-query latency on
// large tables.
func sortRowsByValue(rows []int32, vals []float64) {
	n := len(rows)
	if n < 128 {
		// Insertion sort: cheaper than building key arrays, and stable.
		for i := 1; i < n; i++ {
			r := rows[i]
			v := vals[r]
			j := i - 1
			for j >= 0 && vals[rows[j]] > v {
				rows[j+1] = rows[j]
				j--
			}
			rows[j+1] = r
		}
		return
	}
	if rows[n-1] < chunkSize {
		sortOffsetsByValue(rows, vals)
		return
	}
	keys := make([]uint64, n)
	for i, row := range rows {
		keys[i] = orderedFloatBits(vals[row])
	}
	tmpK := make([]uint64, n)
	tmpR := make([]int32, n)
	src, dst := rows, tmpR
	srcK, dstK := keys, tmpK
	var count [256]int
	for shift := uint(0); shift < 64; shift += 8 {
		for i := range count {
			count[i] = 0
		}
		for _, k := range srcK {
			count[byte(k>>shift)]++
		}
		if count[byte(srcK[0]>>shift)] == n {
			continue // every key shares this byte; the pass is a no-op
		}
		pos := 0
		for i, c := range count {
			count[i] = pos
			pos += c
		}
		for i, k := range srcK {
			b := byte(k >> shift)
			d := count[b]
			count[b]++
			dstK[d] = k
			dst[d] = src[i]
		}
		src, dst = dst, src
		srcK, dstK = dstK, srcK
	}
	if &src[0] != &rows[0] {
		copy(rows, src)
	}
}

// sortOffsetsByValue is the segment-local fast path of sortRowsByValue:
// every row fits in 16 bits, so the offset replaces the low two key
// bytes and the radix sort moves one uint64 per element instead of a
// 12-byte key+row pair. Stability makes the two offset-byte passes
// no-ops (the input is already in ascending offset order), leaving six
// passes over the high value bytes. Truncating the value key to 48 bits
// can merge neighboring values into one tie group, so a fix-up pass
// re-sorts any group whose full values actually differ — for integral
// and low-precision data the low mantissa bytes are zero and the group
// is a true tie already in offset order.
func sortOffsetsByValue(rows []int32, vals []float64) {
	keys := make([]uint64, len(rows))
	for i, row := range rows {
		keys[i] = orderedFloatBits(vals[row])&^0xFFFF | uint64(row)
	}
	for i, k := range sortSegKeys(keys, vals) {
		rows[i] = int32(k & 0xFFFF)
	}
}

// sortSegKeys sorts composite segment keys — the high 48 bits of a
// row's orderedFloatBits with the row's 16-bit offset in the low bytes —
// and returns the sorted slice (which may be keys itself or scratch).
// vals backs the tie fix-up: any group equal in the truncated value bits
// whose full values differ is re-sorted by (value, offset).
func sortSegKeys(keys []uint64, vals []float64) []uint64 {
	n := len(keys)
	if n < 128 {
		for i := 1; i < n; i++ {
			k := keys[i]
			j := i - 1
			for j >= 0 && keys[j] > k {
				keys[j+1] = keys[j]
				j--
			}
			keys[j+1] = k
		}
		return fixupSegTies(keys, vals)
	}
	tmp := make([]uint64, n)
	src, dst := keys, tmp
	var count [256]int
	for shift := uint(16); shift < 64; shift += 8 {
		for i := range count {
			count[i] = 0
		}
		for _, k := range src {
			count[byte(k>>shift)]++
		}
		if count[byte(src[0]>>shift)] == n {
			continue
		}
		pos := 0
		for i, c := range count {
			count[i] = pos
			pos += c
		}
		for _, k := range src {
			b := byte(k >> shift)
			dst[count[b]] = k
			count[b]++
		}
		src, dst = dst, src
	}
	return fixupSegTies(src, vals)
}

// fixupSegTies restores exact (value, offset) order inside groups whose
// truncated 48-bit value keys collide but whose full values differ.
func fixupSegTies(src []uint64, vals []float64) []uint64 {
	n := len(src)
	for i := 0; i < n; {
		j := i + 1
		for j < n && src[j]>>16 == src[i]>>16 {
			j++
		}
		if j-i > 1 {
			run := src[i:j]
			v0 := vals[uint16(run[0])]
			for _, k := range run[1:] {
				if vals[uint16(k)] != v0 {
					sort.Slice(run, func(a, b int) bool {
						va, vb := vals[uint16(run[a])], vals[uint16(run[b])]
						if va != vb {
							return va < vb
						}
						return uint16(run[a]) < uint16(run[b])
					})
					break
				}
			}
		}
		i = j
	}
	return src
}

// orderedFloatBits maps a non-NaN float to a uint64 whose unsigned order
// matches float order, with -0 and +0 mapped to the same key so that
// rows holding either sort purely by row index — exactly the tie-break
// of the comparator this sort replaces.
func orderedFloatBits(v float64) uint64 {
	b := math.Float64bits(v)
	if b == 1<<63 { // -0.0: compares equal to +0.0, must share its key
		b = 0
	}
	if b&(1<<63) != 0 {
		return ^b
	}
	return b | 1<<63
}

// sortUint16s sorts a ascending — two counting-sort passes over the low
// and high bytes. Range materialization packs sorted-order windows
// (value order) back into offset order with it; windows are at most
// arrayMaxCard long, so the byte histograms stay L1-resident.
func sortUint16s(a []uint16) {
	n := len(a)
	if n < 48 {
		for i := 1; i < n; i++ {
			v := a[i]
			j := i - 1
			for j >= 0 && a[j] > v {
				a[j+1] = a[j]
				j--
			}
			a[j+1] = v
		}
		return
	}
	tmp := make([]uint16, n)
	src, dst := a, tmp
	var count [256]int
	for shift := uint(0); shift < 16; shift += 8 {
		for i := range count {
			count[i] = 0
		}
		for _, v := range src {
			count[byte(v>>shift)]++
		}
		if count[byte(src[0]>>shift)] == n {
			continue
		}
		pos := 0
		for i, c := range count {
			count[i] = pos
			pos += c
		}
		for _, v := range src {
			b := byte(v >> shift)
			dst[count[b]] = v
			count[b]++
		}
		src, dst = dst, src
	}
	if &src[0] != &a[0] {
		copy(a, src)
	}
}

// sortFloats sorts s ascending with NaNs first — sort.Float64s' order —
// by LSD radix passes over the order-preserving (and here invertible,
// so -0 survives) bit transform. Numeric binning sorts each column once
// per table; on wide tables that sort dominated first-view latency.
func sortFloats(s []float64) {
	nan := 0
	for i, v := range s {
		if math.IsNaN(v) {
			s[i] = s[nan]
			s[nan] = v
			nan++
		}
	}
	rest := s[nan:]
	n := len(rest)
	if n < 256 {
		sort.Float64s(rest)
		return
	}
	keys := make([]uint64, n)
	for i, v := range rest {
		b := math.Float64bits(v)
		if b&(1<<63) != 0 {
			b = ^b
		} else {
			b |= 1 << 63
		}
		keys[i] = b
	}
	tmp := make([]uint64, n)
	src, dst := keys, tmp
	var count [256]int
	for shift := uint(0); shift < 64; shift += 8 {
		for i := range count {
			count[i] = 0
		}
		for _, k := range src {
			count[byte(k>>shift)]++
		}
		if count[byte(src[0]>>shift)] == n {
			continue
		}
		pos := 0
		for i, c := range count {
			count[i] = pos
			pos += c
		}
		for _, k := range src {
			b := byte(k >> shift)
			dst[count[b]] = k
			count[b]++
		}
		src, dst = dst, src
	}
	for i, k := range src {
		if k&(1<<63) != 0 {
			k ^= 1 << 63
		} else {
			k = ^k
		}
		rest[i] = math.Float64frombits(k)
	}
}
