package dataset

// Append-path tests: validate-before-mutate on the row/batch append
// APIs, incremental index extension vs cold rebuild at segment-boundary
// shapes, sealed-segment reuse, and the exported ExtendPostings helper.

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// TestAppendRowLeavesTableUnmodifiedOnError pins the validate-first
// contract: a type error anywhere in the row must leave every column,
// the row count, and the epoch exactly as they were — no column may end
// up one cell longer than its siblings.
func TestAppendRowLeavesTableUnmodifiedOnError(t *testing.T) {
	tbl := NewTable("partial", Schema{
		{Name: "cat", Kind: Categorical, Queriable: true},
		{Name: "num", Kind: Numeric, Queriable: true},
		{Name: "cat2", Kind: Categorical, Queriable: true},
	})
	tbl.MustAppendRow("a", 1.0, "x")
	epoch := tbl.Epoch()
	dictLen := tbl.Cat(0).Cardinality()

	bad := [][]any{
		{"b", 2.0},               // wrong arity
		{"b", 2.0, "y", "extra"}, // wrong arity
		{"b", "nope", "y"},       // numeric cell gets a string
		{3, 2.0, "y"},            // categorical cell gets an int
		{"b", 2.0, 4.0},          // trailing categorical cell gets a float
	}
	for _, row := range bad {
		if err := tbl.AppendRow(row...); err == nil {
			t.Fatalf("AppendRow(%v): want error", row)
		}
		if n := tbl.NumRows(); n != 1 {
			t.Fatalf("AppendRow(%v): NumRows = %d after failed append, want 1", row, n)
		}
		if got := tbl.Epoch(); got != epoch {
			t.Fatalf("AppendRow(%v): epoch moved %d -> %d on failed append", row, epoch, got)
		}
		for col := 0; col < tbl.NumCols(); col++ {
			if c := tbl.Cat(col); c != nil {
				if len(c.SegCodes(0)) != 1 {
					t.Fatalf("AppendRow(%v): column %d grew on failed append", row, col)
				}
			} else if len(tbl.Num(col).SegValues(0)) != 1 {
				t.Fatalf("AppendRow(%v): column %d grew on failed append", row, col)
			}
		}
	}
	// The earliest bad row interned no dictionary entry either: a failed
	// append must not leak "b" into the categorical dictionary.
	if got := tbl.Cat(0).Cardinality(); got != dictLen {
		t.Fatalf("failed appends grew the dictionary: %d -> %d", dictLen, got)
	}
	// And the table still works.
	tbl.MustAppendRow("b", 2.0, "y")
	if tbl.NumRows() != 2 || tbl.Cat(0).Value(1) != "b" || tbl.Num(1).Value(1) != 2.0 {
		t.Fatalf("table unusable after failed appends")
	}
}

// TestAppendBatchValidatesWholeBatch checks batch appends are
// all-or-nothing: one bad row anywhere rejects the batch with the table
// unmodified, and the error names the offending row.
func TestAppendBatchValidatesWholeBatch(t *testing.T) {
	tbl := NewTable("batch", Schema{
		{Name: "cat", Kind: Categorical, Queriable: true},
		{Name: "num", Kind: Numeric, Queriable: true},
	})
	tbl.MustAppendRow("a", 1.0)
	epoch := tbl.Epoch()

	err := tbl.AppendBatch([][]any{
		{"b", 2.0},
		{"c", 3},
		{"d", "broken"},
		{"e", 5.0},
	})
	if err == nil {
		t.Fatal("AppendBatch with a bad row: want error")
	}
	if !strings.Contains(err.Error(), "row 2") {
		t.Fatalf("AppendBatch error %q does not name row 2", err)
	}
	if tbl.NumRows() != 1 || tbl.Epoch() != epoch {
		t.Fatalf("failed batch mutated the table: rows=%d epoch=%d", tbl.NumRows(), tbl.Epoch())
	}

	if err := tbl.AppendBatch([][]any{{"b", 2.0}, {"c", 3}}); err != nil {
		t.Fatalf("AppendBatch: %v", err)
	}
	if tbl.NumRows() != 3 || tbl.Num(1).Value(2) != 3.0 || tbl.Cat(0).Value(2) != "c" {
		t.Fatal("batch rows not appended in order")
	}
	if tbl.Epoch() != epoch+1 {
		t.Fatalf("batch bumped epoch by %d, want 1", tbl.Epoch()-epoch)
	}
}

// boundaryAppendRows generates deterministic rows with the prefix
// property (rows[:k] identical for every total), in the same shapes as
// boundaryTable: a skewed categorical, a run-structured categorical,
// and a numeric mixing NaN, near-duplicate mantissa ties, and
// half-step duplicates.
func boundaryAppendRows(total int) [][]any {
	labels := make([]string, 120)
	for i := range labels {
		labels[i] = fmt.Sprintf("t%03d", i)
	}
	runs := []string{"r0", "r1", "r2", "r3", "r4"}
	rng := rand.New(rand.NewSource(42))
	rows := make([][]any, total)
	for i := range rows {
		cat := "head"
		if i%3 != 0 {
			cat = labels[rng.Intn(len(labels))]
		}
		var num float64
		switch {
		case i%97 == 0:
			num = math.NaN()
		case i%13 == 0:
			num = 100 + float64(i%7)*1e-11
		default:
			num = math.Floor(rng.Float64()*2000) / 2
		}
		rows[i] = []any{cat, runs[(i/8192)%len(runs)], num}
	}
	return rows
}

func boundaryAppendTable(t *testing.T, rows [][]any) *Table {
	t.Helper()
	tbl := NewTable("boundary-append", Schema{
		{Name: "cat", Kind: Categorical, Queriable: true},
		{Name: "run", Kind: Categorical, Queriable: true},
		{Name: "num", Kind: Numeric, Queriable: true},
	})
	if err := tbl.AppendBatch(rows); err != nil {
		t.Fatalf("AppendBatch: %v", err)
	}
	return tbl
}

// warmIndex forces every lazy structure so a later append extends them
// all instead of rebuilding lazily from scratch.
func warmIndex(ix *Index, tbl *Table) {
	for col := range tbl.Schema() {
		if tbl.Cat(col) != nil {
			ix.CatPostings(col)
			ix.CatFreqs(col)
		} else {
			ix.NumCmpRangeLen(col, 500, true, true, false)
		}
	}
}

// TestAppendBoundaryShapes drives appends that land one row before,
// exactly on, and one row past 64K segment boundaries — including
// appends that seal one segment and open the next — and checks the
// incrementally-extended index is bit-identical to a cold rebuild over
// the same rows: postings (container representation included), code
// frequencies, sorted orders, and the derived range/edge-count queries.
func TestAppendBoundaryShapes(t *testing.T) {
	shapes := []struct{ n0, n1 int }{
		{SegmentSize - 100, SegmentSize - 1}, // stays one short of the boundary
		{SegmentSize - 100, SegmentSize},     // lands exactly on it
		{SegmentSize - 100, SegmentSize + 1}, // crosses it by one row
		{SegmentSize - 1, SegmentSize + 1},   // one-short start, crossing append
		{SegmentSize, SegmentSize + 1},       // sealed start, one-row tail
		{SegmentSize, 2 * SegmentSize},       // sealed start, fills segment 1 exactly
		{SegmentSize + 1, 2*SegmentSize + 1}, // dirty tail start, crossing append
	}
	maxN := 2*SegmentSize + 1
	rows := boundaryAppendRows(maxN)
	numCol := 2

	for _, sh := range shapes {
		sh := sh
		t.Run(fmt.Sprintf("%d+%d", sh.n0, sh.n1-sh.n0), func(t *testing.T) {
			inc := boundaryAppendTable(t, rows[:sh.n0])
			warmIndex(inc.Index(), inc)
			if err := inc.AppendBatch(rows[sh.n0:sh.n1]); err != nil {
				t.Fatalf("AppendBatch: %v", err)
			}
			ix := inc.Index()
			if ix.Rows() != sh.n1 || ix.Epoch() != inc.Epoch() {
				t.Fatalf("extended index covers (rows=%d, epoch=%d), table at (%d, %d)",
					ix.Rows(), ix.Epoch(), sh.n1, inc.Epoch())
			}

			cold := boundaryAppendTable(t, rows[:sh.n1])
			ixC := cold.Index()

			for _, col := range []int{0, 1} {
				ps, psC := ix.CatPostings(col), ixC.CatPostings(col)
				if len(ps) != len(psC) {
					t.Fatalf("col %d: %d postings incremental vs %d cold", col, len(ps), len(psC))
				}
				for code := range ps {
					if !reflect.DeepEqual(ps[code], psC[code]) {
						t.Fatalf("col %d code %d: extended posting differs from cold rebuild", col, code)
					}
				}
				if !reflect.DeepEqual(ix.CatFreqs(col), ixC.CatFreqs(col)) {
					t.Fatalf("col %d: extended freqs differ from cold rebuild", col)
				}
			}

			// Force both sorted orders, then compare the raw per-segment
			// orders and the queries derived from them.
			ix.NumCmpRangeLen(numCol, 500, true, true, false)
			ixC.NumCmpRangeLen(numCol, 500, true, true, false)
			if !reflect.DeepEqual(ix.ord[numCol], ixC.ord[numCol]) {
				t.Fatal("extended sorted order differs from cold rebuild")
			}
			if ix.valid[numCol] != ixC.valid[numCol] {
				t.Fatalf("valid counts differ: %d vs %d", ix.valid[numCol], ixC.valid[numCol])
			}
			for _, r := range [][2]float64{{0, 1000}, {100, 100}, {250.5, 750}, {999.5, 2000}} {
				got, want := ix.NumRange(numCol, r[0], r[1]), ixC.NumRange(numCol, r[0], r[1])
				if !reflect.DeepEqual(rowsOf(got), rowsOf(want)) {
					t.Fatalf("NumRange[%g, %g]: extended differs from cold", r[0], r[1])
				}
			}
			edges := []float64{50, 100, 250.5, 500, 900}
			full := FromRowSet(sh.n1, AllRows(sh.n1))
			lt, le, valid := ix.NumEdgeCounts(numCol, edges, full)
			ltC, leC, validC := ixC.NumEdgeCounts(numCol, edges, full)
			if !reflect.DeepEqual(lt, ltC) || !reflect.DeepEqual(le, leC) || valid != validC {
				t.Fatal("NumEdgeCounts: extended differs from cold")
			}
		})
	}
}

// samePayload reports whether two containers share their payload
// storage (the sealed-segment reuse contract: no copy, same backing
// array).
func samePayload(a, b *container) bool {
	if a.kind != b.kind || a.card != b.card {
		return false
	}
	switch {
	case len(a.array) > 0:
		return len(b.array) > 0 && &a.array[0] == &b.array[0]
	case len(a.words) > 0:
		return len(b.words) > 0 && &a.words[0] == &b.words[0]
	case len(a.runs) > 0:
		return len(b.runs) > 0 && &a.runs[0] == &b.runs[0]
	}
	return b.card == 0 // both empty
}

// TestAppendReusesSealedSegments pins the incremental cost model: an
// append past a sealed 64K segment must reuse that segment's posting
// containers and sorted order verbatim — shared storage, not a
// re-scatter — and only rebuild the dirty tail.
func TestAppendReusesSealedSegments(t *testing.T) {
	rows := boundaryAppendRows(SegmentSize + 500)
	tbl := boundaryAppendTable(t, rows[:SegmentSize+100])
	ix0 := tbl.Index()
	warmIndex(ix0, tbl)
	ps0 := ix0.CatPostings(0)
	ord0 := ix0.ord[2]

	catX0, ordX0 := IndexExtendStats()
	if err := tbl.AppendBatch(rows[SegmentSize+100:]); err != nil {
		t.Fatalf("AppendBatch: %v", err)
	}
	ix1 := tbl.Index()
	catX1, ordX1 := IndexExtendStats()
	if catX1 <= catX0 || ordX1 <= ordX0 {
		t.Fatalf("append did not extend: cat %d->%d, ord %d->%d", catX0, catX1, ordX0, ordX1)
	}

	ps1 := ix1.CatPostings(0)
	shared := 0
	for code := range ps0 {
		if len(ps0[code].cs) == 0 || ps0[code].cs[0].card == 0 {
			continue
		}
		if !samePayload(&ps0[code].cs[0], &ps1[code].cs[0]) {
			t.Fatalf("code %d: sealed segment 0 container was rebuilt, not reused", code)
		}
		shared++
	}
	if shared == 0 {
		t.Fatal("no sealed containers compared")
	}
	ord1 := ix1.ord[2]
	if &ord0[0].rows[0] != &ord1[0].rows[0] {
		t.Fatal("sealed segment 0 sorted order was rebuilt, not reused")
	}
	if &ord0[1].rows[0] == &ord1[1].rows[0] {
		t.Fatal("dirty tail segment order was reused; it must re-sort")
	}
}

// TestExtendPostings exercises the exported incremental posting helper
// directly against a from-scratch build.
func TestExtendPostings(t *testing.T) {
	const card = 5
	mkCodes := func(n int) [][]int32 {
		rng := rand.New(rand.NewSource(7))
		var segs [][]int32
		for i := 0; i < n; i++ {
			if i&SegmentMask == 0 {
				segs = append(segs, nil)
			}
			s := len(segs) - 1
			segs[s] = append(segs[s], int32(rng.Intn(card)))
		}
		return segs
	}
	oldN, n := SegmentSize+37, 2*SegmentSize+11
	segs := mkCodes(n)
	codesAt := func(s int) []int32 { return segCodes(segs, s, n) }

	old := ExtendPostings(nil, 0, oldN, card, func(s int) []int32 { return segCodes(segs, s, oldN) })
	got := ExtendPostings(old, oldN, n, card, codesAt)
	want := ExtendPostings(nil, 0, n, card, codesAt)
	for code := range want {
		if !reflect.DeepEqual(rowsOf(got[code]), rowsOf(want[code])) {
			t.Fatalf("code %d: extended postings differ from scratch build", code)
		}
	}
	// Growing card (new dictionary entries in the tail) yields empty
	// postings for unseen codes.
	grown := ExtendPostings(old, oldN, n, card+2, codesAt)
	if len(grown) != card+2 || grown[card+1].Len() != 0 {
		t.Fatalf("grown-card extend: %d postings, tail len %d", len(grown), grown[card+1].Len())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ExtendPostings with oldN > n must panic")
		}
	}()
	ExtendPostings(old, n, oldN, card, codesAt)
}
