package dataset

import (
	"fmt"
	"strings"
)

// NaturalJoin joins two tables on all columns sharing both name and
// kind, the classic natural join. The paper's CADQL grammar allows
// "FROM table1, table2, ..."; the engine folds such lists left-to-right
// through this function. Joining tables with no shared columns is
// rejected — an unconstrained cross product is never what an
// exploratory user wants and would explode the result.
//
// The output schema is a's columns followed by b's non-shared columns;
// Queriable flags carry over (a's wins for shared columns).
func NaturalJoin(a, b *Table) (*Table, error) {
	if a.NumCols() == 0 || b.NumCols() == 0 {
		return nil, fmt.Errorf("dataset: cannot join tables without columns")
	}
	type sharedCol struct {
		ai, bi int
	}
	var shared []sharedCol
	bOnly := make([]int, 0, b.NumCols())
	for bi, battr := range b.Schema() {
		ai := a.ColIndex(battr.Name)
		if ai >= 0 {
			if a.Schema()[ai].Kind != battr.Kind {
				return nil, fmt.Errorf("dataset: shared column %q has kind %s in %q but %s in %q",
					battr.Name, a.Schema()[ai].Kind, a.Name(), battr.Kind, b.Name())
			}
			shared = append(shared, sharedCol{ai, bi})
		} else {
			bOnly = append(bOnly, bi)
		}
	}
	if len(shared) == 0 {
		return nil, fmt.Errorf("dataset: tables %q and %q share no columns; refusing a cross product", a.Name(), b.Name())
	}

	schema := append(Schema(nil), a.Schema()...)
	for _, bi := range bOnly {
		schema = append(schema, b.Schema()[bi])
	}
	out := NewTable(a.Name()+"_"+b.Name(), schema)

	// Hash b's rows by their shared-column key.
	key := func(t *Table, row int, cols []int) string {
		parts := make([]string, len(cols))
		for i, c := range cols {
			parts[i] = t.CellString(row, c)
		}
		return strings.Join(parts, "\x00")
	}
	aCols := make([]int, len(shared))
	bCols := make([]int, len(shared))
	for i, s := range shared {
		aCols[i] = s.ai
		bCols[i] = s.bi
	}
	index := make(map[string][]int)
	for r := 0; r < b.NumRows(); r++ {
		k := key(b, r, bCols)
		index[k] = append(index[k], r)
	}

	vals := make([]any, out.NumCols())
	for ra := 0; ra < a.NumRows(); ra++ {
		matches := index[key(a, ra, aCols)]
		for _, rb := range matches {
			i := 0
			for c := 0; c < a.NumCols(); c++ {
				vals[i] = cellValue(a, ra, c)
				i++
			}
			for _, bc := range bOnly {
				vals[i] = cellValue(b, rb, bc)
				i++
			}
			if err := out.AppendRow(vals...); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

func cellValue(t *Table, row, col int) any {
	if c := t.Cat(col); c != nil {
		return c.Value(row)
	}
	return t.Num(col).Value(row)
}
