package dataset

import (
	"math/bits"
	"sort"
)

// Hybrid posting containers: every Bitmap partitions its universe into
// 64K-row chunks and stores each chunk in whichever of three
// representations fits its population (roaring-style):
//
//   - array:  sorted []uint16 of the member offsets — sparse chunks.
//     Intersections gallop through the longer side, so a
//     0.1%-selectivity posting costs its own cardinality, not the
//     chunk width.
//   - bitmap: 1024 packed uint64 words — dense chunks; set algebra runs
//     word-wise exactly as the old dense representation did.
//   - run:    sorted inclusive [start, last] intervals — chunks whose
//     members cluster (full chunks, complements of sparse sets,
//     postings of sorted or segmented data).
//
// Containers promote and demote automatically: Add grows an array past
// arrayMaxCard into a bitmap (or converts early when the insertion
// pattern is random), set-operation results demote to the array form
// when their cardinality allows it, and optimize — run on Freeze —
// picks the cheapest of the three forms per chunk. All operations keep
// the same canonical set semantics as the dense words, which is what
// the property harness pins: for every op, hybrid output == dense
// reference output, bit for bit.
const (
	chunkBits = 16
	chunkSize = 1 << chunkBits // rows per container
	chunkMask = chunkSize - 1

	// arrayMaxCard is the array→bitmap promotion threshold: past this
	// cardinality the sorted array (2 bytes/row) costs more than the
	// packed words (8 KB flat), matching the roaring format's constant.
	arrayMaxCard = 4096

	// insertPromote bounds the memmove cost of out-of-order Add into an
	// array: once a chunk under random insertion reaches this size it
	// converts to a bitmap, whose Add is O(1). In-order builders
	// (posting construction scans rows ascending) never hit this path.
	insertPromote = 256

	// gallopRatio is the length imbalance at which array∩array switches
	// from the linear merge to galloping (exponential search) through
	// the longer side.
	gallopRatio = 32

	bitmapWords = chunkSize / 64
)

// ckind tags a container's representation.
type ckind uint8

const (
	arrayK  ckind = iota // sorted []uint16; the zero container is an empty array
	bitmapK              // 1024 packed words
	runK                 // sorted inclusive intervals
)

// interval is one inclusive run [start, last].
type interval struct{ start, last uint16 }

// container is one 64K-row chunk of a Bitmap. Exactly one of the three
// payload slices is non-nil (none for the empty array); card caches the
// population so Len over a Bitmap is O(chunks).
type container struct {
	kind  ckind
	card  int32
	array []uint16
	words []uint64
	runs  []interval
}

// --- construction and conversion ---------------------------------------

func (c *container) clone() container {
	out := container{kind: c.kind, card: c.card}
	switch c.kind {
	case arrayK:
		if len(c.array) > 0 {
			out.array = append([]uint16(nil), c.array...)
		}
	case bitmapK:
		out.words = append([]uint64(nil), c.words...)
	case runK:
		out.runs = append([]interval(nil), c.runs...)
	}
	return out
}

// fullContainer returns the run container holding [0, lim).
func fullContainer(lim int) container {
	if lim <= 0 {
		return container{}
	}
	return container{kind: runK, card: int32(lim), runs: []interval{{0, uint16(lim - 1)}}}
}

// toWords materializes the container into freshly allocated packed words.
func (c *container) toWords() []uint64 {
	w := make([]uint64, bitmapWords)
	c.writeWords(w)
	return w
}

// writeWords ORs the container's members into w (len bitmapWords).
func (c *container) writeWords(w []uint64) {
	switch c.kind {
	case arrayK:
		for _, v := range c.array {
			w[v>>6] |= 1 << (v & 63)
		}
	case bitmapK:
		for i, x := range c.words {
			w[i] |= x
		}
	case runK:
		for _, r := range c.runs {
			setRange(w, int(r.start), int(r.last))
		}
	}
}

// fromWords builds the canonical container for packed words with the
// given population: array when sparse, the words themselves otherwise.
func fromWords(w []uint64, card int) container {
	if card == 0 {
		return container{}
	}
	if card <= arrayMaxCard {
		arr := make([]uint16, 0, card)
		for i, x := range w {
			base := uint16(i << 6)
			for x != 0 {
				arr = append(arr, base+uint16(bits.TrailingZeros64(x)))
				x &= x - 1
			}
		}
		return container{kind: arrayK, card: int32(card), array: arr}
	}
	return container{kind: bitmapK, card: int32(card), words: w}
}

// toBitmapKind converts c in place to the bitmap representation.
func (c *container) toBitmapKind() {
	if c.kind == bitmapK {
		return
	}
	w := c.toWords()
	*c = container{kind: bitmapK, card: c.card, words: w}
}

// optimize rewrites c into whichever representation costs the fewest
// bytes — the pass Freeze runs over index-owned postings so skewed
// columns keep their tail codes as tiny arrays and their clustered or
// head codes as runs. The set is unchanged.
func (c *container) optimize() {
	if c.card == 0 {
		*c = container{}
		return
	}
	arrayBytes, bitmapBytes := int(c.card)*2, bitmapWords*8
	if int(c.card) > arrayMaxCard {
		arrayBytes = bitmapBytes + 1 // array form not allowed past the threshold
	}
	// Run form only wins below this run count; the counting scan stops
	// as soon as the budget is exceeded, which on incompressible chunks
	// (fresh posting scatters, random data) is a fraction of the chunk.
	runCap := min(arrayBytes, bitmapBytes)/4 + 1
	nRuns := c.countRuns(runCap)
	runBytes := nRuns * 4
	switch {
	case runBytes < arrayBytes && runBytes < bitmapBytes:
		if c.kind != runK {
			runs := make([]interval, 0, nRuns)
			start, prev := -1, -2
			c.forEach(0, func(v int) {
				if v != prev+1 {
					if start >= 0 {
						runs = append(runs, interval{uint16(start), uint16(prev)})
					}
					start = v
				}
				prev = v
			})
			runs = append(runs, interval{uint16(start), uint16(prev)})
			*c = container{kind: runK, card: c.card, runs: runs}
		} else if cap(c.runs) > len(c.runs) {
			c.runs = append([]interval(nil), c.runs...)
		}
	case arrayBytes <= bitmapBytes:
		if c.kind != arrayK {
			arr := make([]uint16, 0, c.card)
			c.forEach(0, func(v int) { arr = append(arr, uint16(v)) })
			*c = container{kind: arrayK, card: c.card, array: arr}
		} else if cap(c.array) > len(c.array) {
			c.array = append([]uint16(nil), c.array...)
		}
	default:
		c.toBitmapKind()
	}
}

// countRuns counts the container's maximal runs of consecutive members,
// giving up once the count exceeds cap (the return is then ≥ cap but no
// longer exact — callers use cap as a "run form cannot win" threshold).
func (c *container) countRuns(cap int) int {
	switch c.kind {
	case arrayK:
		n := 0
		prev := -2
		for _, v := range c.array {
			if int(v) != prev+1 {
				n++
				if n > cap {
					return n
				}
			}
			prev = int(v)
		}
		return n
	case runK:
		return len(c.runs)
	default:
		n := 0
		var carry uint64 // 1 when the previous word ended mid-run
		for _, w := range c.words {
			// Run starts are set bits whose predecessor bit is clear.
			n += bits.OnesCount64(w &^ (w<<1 | carry))
			if n > cap {
				return n
			}
			carry = w >> 63
		}
		return n
	}
}

// --- point operations ---------------------------------------------------

func (c *container) contains(v uint16) bool {
	switch c.kind {
	case arrayK:
		i := sort.Search(len(c.array), func(i int) bool { return c.array[i] >= v })
		return i < len(c.array) && c.array[i] == v
	case bitmapK:
		return c.words[v>>6]&(1<<(v&63)) != 0
	default:
		i := sort.Search(len(c.runs), func(i int) bool { return c.runs[i].last >= v })
		return i < len(c.runs) && c.runs[i].start <= v
	}
}

// add inserts v, promoting the representation when needed.
func (c *container) add(v uint16) {
	switch c.kind {
	case arrayK:
		n := len(c.array)
		if n == 0 || c.array[n-1] < v {
			if n >= arrayMaxCard {
				c.toBitmapKind()
				c.add(v)
				return
			}
			c.array = append(c.array, v)
			c.card++
			return
		}
		i := sort.Search(n, func(i int) bool { return c.array[i] >= v })
		if i < n && c.array[i] == v {
			return
		}
		if n >= insertPromote {
			// Random-order insertion: stop paying per-add memmoves.
			c.toBitmapKind()
			c.add(v)
			return
		}
		c.array = append(c.array, 0)
		copy(c.array[i+1:], c.array[i:])
		c.array[i] = v
		c.card++
	case bitmapK:
		w, b := v>>6, uint64(1)<<(v&63)
		if c.words[w]&b == 0 {
			c.words[w] |= b
			c.card++
		}
	default:
		if c.contains(v) {
			return
		}
		// Runs are produced by optimize/Full/Not; mutating one falls back
		// to the dense form, and a later optimize can re-compress.
		c.toBitmapKind()
		c.add(v)
	}
}

// rank returns |{x ∈ c : x < v}|.
func (c *container) rank(v uint16) int {
	switch c.kind {
	case arrayK:
		return sort.Search(len(c.array), func(i int) bool { return c.array[i] >= v })
	case bitmapK:
		w := int(v >> 6)
		total := 0
		for i := 0; i < w; i++ {
			total += bits.OnesCount64(c.words[i])
		}
		return total + bits.OnesCount64(c.words[w]&(1<<(v&63)-1))
	default:
		total := 0
		for _, r := range c.runs {
			if r.start >= v {
				break
			}
			last := int(r.last)
			if int(v)-1 < last {
				last = int(v) - 1
			}
			total += last - int(r.start) + 1
		}
		return total
	}
}

// minValue returns the smallest member; the container must be non-empty.
func (c *container) minValue() int {
	switch c.kind {
	case arrayK:
		return int(c.array[0])
	case bitmapK:
		for i, w := range c.words {
			if w != 0 {
				return i<<6 + bits.TrailingZeros64(w)
			}
		}
		return -1
	default:
		return int(c.runs[0].start)
	}
}

// forEach calls fn(base+v) for every member v in ascending order.
func (c *container) forEach(base int, fn func(v int)) {
	switch c.kind {
	case arrayK:
		for _, v := range c.array {
			fn(base + int(v))
		}
	case bitmapK:
		for i, w := range c.words {
			wbase := base + i<<6
			for w != 0 {
				fn(wbase + bits.TrailingZeros64(w))
				w &= w - 1
			}
		}
	default:
		for _, r := range c.runs {
			for v := int(r.start); v <= int(r.last); v++ {
				fn(base + v)
			}
		}
	}
}

// --- word-range helpers -------------------------------------------------

// setRange sets bits [lo, hi] (inclusive) in w.
func setRange(w []uint64, lo, hi int) {
	first, last := lo>>6, hi>>6
	fm := ^uint64(0) << (lo & 63)
	lm := ^uint64(0) >> (63 - hi&63)
	if first == last {
		w[first] |= fm & lm
		return
	}
	w[first] |= fm
	for i := first + 1; i < last; i++ {
		w[i] = ^uint64(0)
	}
	w[last] |= lm
}

// clearRange clears bits [lo, hi] (inclusive) in w.
func clearRange(w []uint64, lo, hi int) {
	first, last := lo>>6, hi>>6
	fm := ^uint64(0) << (lo & 63)
	lm := ^uint64(0) >> (63 - hi&63)
	if first == last {
		w[first] &^= fm & lm
		return
	}
	w[first] &^= fm
	for i := first + 1; i < last; i++ {
		w[i] = 0
	}
	w[last] &^= lm
}

// onesCountRange counts set bits of w within [lo, hi] inclusive.
func onesCountRange(w []uint64, lo, hi int) int {
	first, last := lo>>6, hi>>6
	fm := ^uint64(0) << (lo & 63)
	lm := ^uint64(0) >> (63 - hi&63)
	if first == last {
		return bits.OnesCount64(w[first] & fm & lm)
	}
	total := bits.OnesCount64(w[first] & fm)
	for i := first + 1; i < last; i++ {
		total += bits.OnesCount64(w[i])
	}
	return total + bits.OnesCount64(w[last]&lm)
}

// --- array primitives ---------------------------------------------------

// gallopSearch returns the smallest index i in a[from:] with a[i] >= v,
// by exponential probe then binary search — O(log distance) instead of
// O(len) when the intersection partner is much shorter.
func gallopSearch(a []uint16, from int, v uint16) int {
	bound := 1
	for from+bound < len(a) && a[from+bound] < v {
		bound <<= 1
	}
	hi := from + bound
	if hi > len(a) {
		hi = len(a)
	}
	lo := from + bound>>1
	for lo < hi {
		mid := (lo + hi) >> 1
		if a[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// intersectArrays writes a ∩ b into out (which may be nil) and returns
// it, galloping through the longer side when the imbalance warrants.
func intersectArrays(a, b, out []uint16) []uint16 {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		return out
	}
	if len(b) >= len(a)*gallopRatio {
		j := 0
		for _, v := range a {
			j = gallopSearch(b, j, v)
			if j == len(b) {
				break
			}
			if b[j] == v {
				out = append(out, v)
				j++
			}
		}
		return out
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// intersectArrayRuns appends the members of arr that fall inside runs.
func intersectArrayRuns(arr []uint16, runs []interval, out []uint16) []uint16 {
	j := 0
	for _, v := range arr {
		for j < len(runs) && runs[j].last < v {
			j++
		}
		if j == len(runs) {
			break
		}
		if runs[j].start <= v {
			out = append(out, v)
		}
	}
	return out
}

// intersectRuns appends the interval intersection of a and b to out.
func intersectRuns(a, b, out []interval) []interval {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		lo := a[i].start
		if b[j].start > lo {
			lo = b[j].start
		}
		hi := a[i].last
		if b[j].last < hi {
			hi = b[j].last
		}
		if lo <= hi {
			out = append(out, interval{lo, hi})
		}
		if a[i].last < b[j].last {
			i++
		} else {
			j++
		}
	}
	return out
}

// --- binary set operations ----------------------------------------------

// andContainers returns a ∩ b in canonical form.
func andContainers(a, b *container) container {
	if a.card == 0 || b.card == 0 {
		return container{}
	}
	// Normalize the dispatch: array before run before bitmap on the left.
	if a.kind == bitmapK && b.kind != bitmapK {
		a, b = b, a
	}
	if a.kind == runK && b.kind == arrayK {
		a, b = b, a
	}
	switch {
	case a.kind == arrayK && b.kind == arrayK:
		out := intersectArrays(a.array, b.array, make([]uint16, 0, minInt(len(a.array), len(b.array))))
		return arrayContainer(out)
	case a.kind == arrayK && b.kind == runK:
		out := intersectArrayRuns(a.array, b.runs, make([]uint16, 0, len(a.array)))
		return arrayContainer(out)
	case a.kind == arrayK: // array ∩ bitmap
		out := make([]uint16, 0, len(a.array))
		for _, v := range a.array {
			if b.words[v>>6]&(1<<(v&63)) != 0 {
				out = append(out, v)
			}
		}
		return arrayContainer(out)
	case a.kind == runK && b.kind == runK:
		runs := intersectRuns(a.runs, b.runs, make([]interval, 0, len(a.runs)+len(b.runs)))
		return runContainer(runs)
	case a.kind == runK: // run ∩ bitmap: copy the masked ranges
		w := make([]uint64, bitmapWords)
		card := 0
		for _, r := range a.runs {
			first, last := int(r.start)>>6, int(r.last)>>6
			fm := ^uint64(0) << (r.start & 63)
			lm := ^uint64(0) >> (63 - r.last&63)
			if first == last {
				w[first] |= b.words[first] & fm & lm
				continue
			}
			w[first] |= b.words[first] & fm
			for i := first + 1; i < last; i++ {
				w[i] = b.words[i]
			}
			w[last] |= b.words[last] & lm
		}
		for _, x := range w {
			card += bits.OnesCount64(x)
		}
		return fromWords(w, card)
	default: // bitmap ∩ bitmap
		w := make([]uint64, bitmapWords)
		card := 0
		for i, x := range a.words {
			x &= b.words[i]
			w[i] = x
			card += bits.OnesCount64(x)
		}
		return fromWords(w, card)
	}
}

// arrayContainer wraps a sorted unique slice as a canonical container.
func arrayContainer(arr []uint16) container {
	if len(arr) == 0 {
		return container{}
	}
	if len(arr) > arrayMaxCard {
		c := container{kind: arrayK, card: int32(len(arr)), array: arr}
		c.toBitmapKind()
		return c
	}
	return container{kind: arrayK, card: int32(len(arr)), array: arr}
}

// runContainer wraps sorted disjoint intervals as a container.
func runContainer(runs []interval) container {
	if len(runs) == 0 {
		return container{}
	}
	card := 0
	for _, r := range runs {
		card += int(r.last) - int(r.start) + 1
	}
	return container{kind: runK, card: int32(card), runs: runs}
}

// orContainers returns a ∪ b in canonical form.
func orContainers(a, b *container) container {
	if a.card == 0 {
		return b.clone()
	}
	if b.card == 0 {
		return a.clone()
	}
	if a.kind == arrayK && b.kind == arrayK && len(a.array)+len(b.array) <= arrayMaxCard {
		out := make([]uint16, 0, len(a.array)+len(b.array))
		i, j := 0, 0
		for i < len(a.array) && j < len(b.array) {
			switch {
			case a.array[i] < b.array[j]:
				out = append(out, a.array[i])
				i++
			case a.array[i] > b.array[j]:
				out = append(out, b.array[j])
				j++
			default:
				out = append(out, a.array[i])
				i++
				j++
			}
		}
		out = append(out, a.array[i:]...)
		out = append(out, b.array[j:]...)
		return arrayContainer(out)
	}
	if a.kind == runK && b.kind == runK {
		return runContainer(unionRuns(a.runs, b.runs))
	}
	w := make([]uint64, bitmapWords)
	a.writeWords(w)
	b.writeWords(w)
	card := 0
	for _, x := range w {
		card += bits.OnesCount64(x)
	}
	return fromWords(w, card)
}

// unionRuns merges two sorted disjoint interval lists, coalescing
// touching intervals.
func unionRuns(a, b []interval) []interval {
	out := make([]interval, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		var next interval
		if j == len(b) || (i < len(a) && a[i].start <= b[j].start) {
			next = a[i]
			i++
		} else {
			next = b[j]
			j++
		}
		if n := len(out); n > 0 && int(next.start) <= int(out[n-1].last)+1 {
			if next.last > out[n-1].last {
				out[n-1].last = next.last
			}
		} else {
			out = append(out, next)
		}
	}
	return out
}

// andNotContainers returns a \ b in canonical form.
func andNotContainers(a, b *container) container {
	if a.card == 0 || b.card == 0 {
		return a.clone()
	}
	switch a.kind {
	case arrayK:
		out := make([]uint16, 0, len(a.array))
		switch b.kind {
		case arrayK:
			j := 0
			for _, v := range a.array {
				for j < len(b.array) && b.array[j] < v {
					j++
				}
				if j < len(b.array) && b.array[j] == v {
					continue
				}
				out = append(out, v)
			}
		case bitmapK:
			for _, v := range a.array {
				if b.words[v>>6]&(1<<(v&63)) == 0 {
					out = append(out, v)
				}
			}
		default:
			j := 0
			for _, v := range a.array {
				for j < len(b.runs) && b.runs[j].last < v {
					j++
				}
				if j < len(b.runs) && b.runs[j].start <= v {
					continue
				}
				out = append(out, v)
			}
		}
		return arrayContainer(out)
	default:
		// Dense and run minuends go through words; run subtrahends clear
		// whole ranges instead of per-bit work.
		w := a.toWords()
		switch b.kind {
		case arrayK:
			for _, v := range b.array {
				w[v>>6] &^= 1 << (v & 63)
			}
		case bitmapK:
			for i, x := range b.words {
				w[i] &^= x
			}
		default:
			for _, r := range b.runs {
				clearRange(w, int(r.start), int(r.last))
			}
		}
		card := 0
		for _, x := range w {
			card += bits.OnesCount64(x)
		}
		return fromWords(w, card)
	}
}

// notContainer returns the complement of a within [0, lim).
func notContainer(a *container, lim int) container {
	if lim <= 0 {
		return container{}
	}
	if a.card == 0 {
		return fullContainer(lim)
	}
	if a.kind == runK {
		out := make([]interval, 0, len(a.runs)+1)
		next := 0
		for _, r := range a.runs {
			if int(r.start) > next {
				out = append(out, interval{uint16(next), uint16(r.start - 1)})
			}
			next = int(r.last) + 1
		}
		if next < lim {
			out = append(out, interval{uint16(next), uint16(lim - 1)})
		}
		return runContainer(out)
	}
	w := make([]uint64, bitmapWords)
	setRange(w, 0, lim-1)
	switch a.kind {
	case arrayK:
		for _, v := range a.array {
			w[v>>6] &^= 1 << (v & 63)
		}
	default:
		for i, x := range a.words {
			w[i] &^= x
		}
		// Members never exceed lim, so no re-masking is needed.
	}
	return fromWords(w, lim-int(a.card))
}

// --- counting and iteration over intersections --------------------------

// andLenContainers returns |a ∩ b| without materializing it.
func andLenContainers(a, b *container) int {
	if a.card == 0 || b.card == 0 {
		return 0
	}
	if a.kind == bitmapK && b.kind != bitmapK {
		a, b = b, a
	}
	if a.kind == runK && b.kind == arrayK {
		a, b = b, a
	}
	switch {
	case a.kind == arrayK && b.kind == arrayK:
		return countIntersectArrays(a.array, b.array)
	case a.kind == arrayK && b.kind == runK:
		n, j := 0, 0
		for _, v := range a.array {
			for j < len(b.runs) && b.runs[j].last < v {
				j++
			}
			if j == len(b.runs) {
				break
			}
			if b.runs[j].start <= v {
				n++
			}
		}
		return n
	case a.kind == arrayK: // array ∩ bitmap
		n := 0
		for _, v := range a.array {
			if b.words[v>>6]&(1<<(v&63)) != 0 {
				n++
			}
		}
		return n
	case a.kind == runK && b.kind == runK:
		n := 0
		i, j := 0, 0
		for i < len(a.runs) && j < len(b.runs) {
			lo := maxU16(a.runs[i].start, b.runs[j].start)
			hi := minU16(a.runs[i].last, b.runs[j].last)
			if lo <= hi {
				n += int(hi) - int(lo) + 1
			}
			if a.runs[i].last < b.runs[j].last {
				i++
			} else {
				j++
			}
		}
		return n
	case a.kind == runK: // run ∩ bitmap
		n := 0
		for _, r := range a.runs {
			n += onesCountRange(b.words, int(r.start), int(r.last))
		}
		return n
	default: // bitmap ∩ bitmap
		n := 0
		for i, x := range a.words {
			n += bits.OnesCount64(x & b.words[i])
		}
		return n
	}
}

// countIntersectArrays is intersectArrays without the output.
func countIntersectArrays(a, b []uint16) int {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		return 0
	}
	n := 0
	if len(b) >= len(a)*gallopRatio {
		j := 0
		for _, v := range a {
			j = gallopSearch(b, j, v)
			if j == len(b) {
				break
			}
			if b[j] == v {
				n++
				j++
			}
		}
		return n
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// andLen3Containers returns |a ∩ b ∩ c| without materializing either
// intersection — the contingency-cell primitive.
func andLen3Containers(a, b, c *container) int {
	if a.card == 0 || b.card == 0 || c.card == 0 {
		return 0
	}
	if a.kind == bitmapK && b.kind == bitmapK && c.kind == bitmapK {
		n := 0
		for i, x := range a.words {
			n += bits.OnesCount64(x & b.words[i] & c.words[i])
		}
		return n
	}
	// Iterate the smallest array operand, probing the other two; with no
	// array operand, fold the two smallest and count against the third.
	smallest := -1
	ops := [3]*container{a, b, c}
	for i, op := range ops {
		if op.kind == arrayK && (smallest < 0 || op.card < ops[smallest].card) {
			smallest = i
		}
	}
	if smallest >= 0 {
		p, q := ops[(smallest+1)%3], ops[(smallest+2)%3]
		n := 0
		for _, v := range ops[smallest].array {
			if p.contains(v) && q.contains(v) {
				n++
			}
		}
		return n
	}
	// Only bitmap and run kinds remain; fold the two cheapest first.
	sort.Slice(ops[:], func(i, j int) bool { return ops[i].card < ops[j].card })
	m := andContainers(ops[0], ops[1])
	return andLenContainers(&m, ops[2])
}

// first returns the container's smallest member, or -1 when empty.
func (c *container) first() int {
	if c.card == 0 {
		return -1
	}
	switch c.kind {
	case arrayK:
		return int(c.array[0])
	case runK:
		return int(c.runs[0].start)
	default: // bitmap
		for i, x := range c.words {
			if x != 0 {
				return i<<6 + bits.TrailingZeros64(x)
			}
		}
		return -1
	}
}

// andFirstContainers returns the smallest member of a ∩ b, or -1.
func andFirstContainers(a, b *container) int {
	if a.card == 0 || b.card == 0 {
		return -1
	}
	if a.kind == bitmapK && b.kind == bitmapK {
		for i, x := range a.words {
			if m := x & b.words[i]; m != 0 {
				return i<<6 + bits.TrailingZeros64(m)
			}
		}
		return -1
	}
	if b.kind == arrayK && a.kind != arrayK {
		a, b = b, a
	}
	if a.kind == arrayK {
		for _, v := range a.array {
			if b.contains(v) {
				return int(v)
			}
		}
		return -1
	}
	// a is a run container (b is run or bitmap): probe b run by run.
	if a.kind != runK {
		a, b = b, a
	}
	for _, r := range a.runs {
		switch b.kind {
		case runK:
			for _, s := range b.runs {
				lo := maxU16(r.start, s.start)
				hi := minU16(r.last, s.last)
				if lo <= hi {
					return int(lo)
				}
			}
		default: // bitmap
			for w := int(r.start) >> 6; w <= int(r.last)>>6; w++ {
				x := b.words[w]
				if w == int(r.start)>>6 {
					x &= ^uint64(0) << (r.start & 63)
				}
				if w == int(r.last)>>6 {
					x &= ^uint64(0) >> (63 - r.last&63)
				}
				if x != 0 {
					return w<<6 + bits.TrailingZeros64(x)
				}
			}
		}
	}
	return -1
}

// forEachAndContainers calls fn(base+v) for each v ∈ a ∩ b ascending.
func forEachAndContainers(a, b *container, base int, fn func(row int)) {
	if a.card == 0 || b.card == 0 {
		return
	}
	if b.kind == arrayK && a.kind != arrayK {
		a, b = b, a
	}
	switch {
	case a.kind == arrayK && b.kind == arrayK:
		for _, v := range intersectArrays(a.array, b.array, nil) {
			fn(base + int(v))
		}
	case a.kind == arrayK && b.kind == bitmapK:
		for _, v := range a.array {
			if b.words[v>>6]&(1<<(v&63)) != 0 {
				fn(base + int(v))
			}
		}
	case a.kind == arrayK: // array ∩ run
		j := 0
		for _, v := range a.array {
			for j < len(b.runs) && b.runs[j].last < v {
				j++
			}
			if j == len(b.runs) {
				return
			}
			if b.runs[j].start <= v {
				fn(base + int(v))
			}
		}
	case a.kind == bitmapK && b.kind == bitmapK:
		for i, x := range a.words {
			x &= b.words[i]
			wbase := base + i<<6
			for x != 0 {
				fn(wbase + bits.TrailingZeros64(x))
				x &= x - 1
			}
		}
	default:
		// At least one run operand: intersect as intervals/masks and walk.
		if a.kind != runK {
			a, b = b, a
		}
		if b.kind == runK {
			for _, r := range intersectRuns(a.runs, b.runs, nil) {
				for v := int(r.start); v <= int(r.last); v++ {
					fn(base + v)
				}
			}
			return
		}
		for _, r := range a.runs {
			for w := int(r.start) >> 6; w <= int(r.last)>>6; w++ {
				x := b.words[w]
				if w == int(r.start)>>6 {
					x &= ^uint64(0) << (r.start & 63)
				}
				if w == int(r.last)>>6 {
					x &= ^uint64(0) >> (63 - r.last&63)
				}
				wbase := base + w<<6
				for x != 0 {
					fn(wbase + bits.TrailingZeros64(x))
					x &= x - 1
				}
			}
		}
	}
}

// memoryBytes is the payload footprint of the container's backing store.
func (c *container) memoryBytes() int {
	return cap(c.array)*2 + cap(c.words)*8 + cap(c.runs)*4
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func minU16(a, b uint16) uint16 {
	if a < b {
		return a
	}
	return b
}

func maxU16(a, b uint16) uint16 {
	if a > b {
		return a
	}
	return b
}
