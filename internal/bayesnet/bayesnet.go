// Package bayesnet learns tree-structured Bayesian networks over a
// table's coded attributes. The paper's related-work section (§7) notes
// that "a Bayesian network can provide a more accurate description of
// attribute interactions by giving probabilistic dependencies between
// attributes" and that such techniques "can be used to create CAD Views
// with other types of data summaries" — this package provides that
// extension: a Chow-Liu tree (the maximum-likelihood tree-shaped
// network), per-edge conditional probability tables, log-likelihood
// scoring, ancestral sampling, and a ranked dependency report.
package bayesnet

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"dbexplorer/internal/dataset"
	"dbexplorer/internal/dataview"
)

// Edge is one directed dependency Parent → Child of the learned tree,
// weighted by the attributes' mutual information (in nats).
type Edge struct {
	Parent, Child     string
	MutualInformation float64
}

// Network is a learned tree-structured Bayesian network.
type Network struct {
	// Root is the attribute the tree was rooted at.
	Root string
	// Edges are the directed dependencies in breadth-first order.
	Edges []Edge

	attrs  []string
	cols   map[string]*dataview.Column
	parent map[string]string // child -> parent ("" for root)
	// cpt[child][parentCode][childCode] = P(child=code | parent=pcode);
	// the root's table is indexed with parentCode 0.
	cpt map[string][][]float64
}

// Options configures learning.
type Options struct {
	// Root names the attribute to root the tree at; empty picks the
	// attribute with the highest total mutual information (the most
	// "central" attribute).
	Root string
	// Smoothing is the Laplace pseudo-count for CPT estimation
	// (default 1).
	Smoothing float64
}

// Learn fits a Chow-Liu tree over the given attributes of v restricted
// to rows. At least two attributes and one row are required.
func Learn(v *dataview.View, rows dataset.RowSet, attrs []string, opt Options) (*Network, error) {
	if len(attrs) < 2 {
		return nil, fmt.Errorf("bayesnet: need at least 2 attributes, got %d", len(attrs))
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("bayesnet: empty row set")
	}
	if opt.Smoothing <= 0 {
		opt.Smoothing = 1
	}
	cols := make(map[string]*dataview.Column, len(attrs))
	seen := map[string]bool{}
	for _, a := range attrs {
		if seen[a] {
			return nil, fmt.Errorf("bayesnet: duplicate attribute %q", a)
		}
		seen[a] = true
		c, err := v.Column(a)
		if err != nil {
			return nil, err
		}
		cols[a] = c
	}

	// Pairwise mutual information.
	n := len(attrs)
	mi := make([][]float64, n)
	for i := range mi {
		mi[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m := pairMI(cols[attrs[i]], cols[attrs[j]], rows)
			mi[i][j] = m
			mi[j][i] = m
		}
	}

	// Maximum spanning tree over MI weights (Prim).
	inTree := make([]bool, n)
	bestW := make([]float64, n)
	bestFrom := make([]int, n)
	for i := range bestW {
		bestW[i] = -1
		bestFrom[i] = -1
	}
	rootIdx := pickRoot(attrs, mi, opt.Root)
	if rootIdx < 0 {
		return nil, fmt.Errorf("bayesnet: root attribute %q not in attribute list", opt.Root)
	}
	inTree[rootIdx] = true
	for j := 0; j < n; j++ {
		if j != rootIdx {
			bestW[j] = mi[rootIdx][j]
			bestFrom[j] = rootIdx
		}
	}
	parentIdx := make([]int, n)
	parentIdx[rootIdx] = -1
	for added := 1; added < n; added++ {
		pick := -1
		for j := 0; j < n; j++ {
			if !inTree[j] && (pick < 0 || bestW[j] > bestW[pick]) {
				pick = j
			}
		}
		inTree[pick] = true
		parentIdx[pick] = bestFrom[pick]
		for j := 0; j < n; j++ {
			if !inTree[j] && mi[pick][j] > bestW[j] {
				bestW[j] = mi[pick][j]
				bestFrom[j] = pick
			}
		}
	}

	net := &Network{
		Root:   attrs[rootIdx],
		attrs:  append([]string(nil), attrs...),
		cols:   cols,
		parent: make(map[string]string, n),
		cpt:    make(map[string][][]float64, n),
	}
	// Breadth-first edge order from the root for stable output.
	order := []int{rootIdx}
	for head := 0; head < len(order); head++ {
		p := order[head]
		var kids []int
		for j := 0; j < n; j++ {
			if parentIdx[j] == p {
				kids = append(kids, j)
			}
		}
		sort.Slice(kids, func(a, b int) bool { return mi[p][kids[a]] > mi[p][kids[b]] })
		for _, j := range kids {
			net.Edges = append(net.Edges, Edge{
				Parent:            attrs[p],
				Child:             attrs[j],
				MutualInformation: mi[p][j],
			})
			net.parent[attrs[j]] = attrs[p]
			order = append(order, j)
		}
	}
	net.parent[attrs[rootIdx]] = ""

	// CPT estimation with Laplace smoothing.
	for _, a := range attrs {
		child := cols[a]
		var parentCard int
		var parentCol *dataview.Column
		if p := net.parent[a]; p == "" {
			parentCard = 1
		} else {
			parentCol = cols[p]
			parentCard = parentCol.Cardinality()
		}
		table := make([][]float64, parentCard)
		for pc := range table {
			table[pc] = make([]float64, child.Cardinality())
			for cc := range table[pc] {
				table[pc][cc] = opt.Smoothing
			}
		}
		for _, r := range rows {
			pc := 0
			if parentCol != nil {
				pc = parentCol.Code(r)
			}
			cc := child.Code(r)
			// NaN cells code -1 and contribute no observation; the
			// smoothing prior still keeps every CPT row normalizable.
			if pc < 0 || cc < 0 {
				continue
			}
			table[pc][cc]++
		}
		for pc := range table {
			var total float64
			for _, c := range table[pc] {
				total += c
			}
			for cc := range table[pc] {
				table[pc][cc] /= total
			}
		}
		net.cpt[a] = table
	}
	return net, nil
}

func pickRoot(attrs []string, mi [][]float64, want string) int {
	if want != "" {
		for i, a := range attrs {
			if a == want {
				return i
			}
		}
		return -1
	}
	best, bestSum := 0, -1.0
	for i := range attrs {
		var sum float64
		for j := range attrs {
			sum += mi[i][j]
		}
		if sum > bestSum {
			best, bestSum = i, sum
		}
	}
	return best
}

// pairMI computes I(X;Y) in nats over rows.
func pairMI(x, y *dataview.Column, rows dataset.RowSet) float64 {
	joint := make([][]float64, x.Cardinality())
	for i := range joint {
		joint[i] = make([]float64, y.Cardinality())
	}
	px := make([]float64, x.Cardinality())
	py := make([]float64, y.Cardinality())
	n := float64(len(rows))
	for _, r := range rows {
		cx, cy := x.Code(r), y.Code(r)
		if cx < 0 || cy < 0 {
			continue // NaN cells join no (x, y) cell
		}
		joint[cx][cy]++
		px[cx]++
		py[cy]++
	}
	var mi float64
	for i := range joint {
		if px[i] == 0 {
			continue
		}
		for j := range joint[i] {
			if joint[i][j] == 0 || py[j] == 0 {
				continue
			}
			mi += (joint[i][j] / n) * math.Log(joint[i][j]*n/(px[i]*py[j]))
		}
	}
	if mi < 0 {
		mi = 0
	}
	return mi
}

// Parent returns an attribute's parent, or "" for the root.
func (net *Network) Parent(attr string) string { return net.parent[attr] }

// Prob returns P(attr = value | parent's value in the same row context).
// For the root, the parent value is ignored.
func (net *Network) Prob(attr, value, parentValue string) (float64, error) {
	col, ok := net.cols[attr]
	if !ok {
		return 0, fmt.Errorf("bayesnet: attribute %q not in network", attr)
	}
	cc := col.CodeOf(value)
	if cc < 0 {
		return 0, fmt.Errorf("bayesnet: attribute %q has no value %q", attr, value)
	}
	pc := 0
	if p := net.parent[attr]; p != "" {
		pcol := net.cols[p]
		pc = pcol.CodeOf(parentValue)
		if pc < 0 {
			return 0, fmt.Errorf("bayesnet: parent %q has no value %q", p, parentValue)
		}
	}
	return net.cpt[attr][pc][cc], nil
}

// LogLikelihood scores rows under the network (sum of per-row joint
// log-probabilities).
func (net *Network) LogLikelihood(rows dataset.RowSet) float64 {
	var ll float64
	for _, r := range rows {
		for _, a := range net.attrs {
			col := net.cols[a]
			pc := 0
			if p := net.parent[a]; p != "" {
				pc = net.cols[p].Code(r)
			}
			cc := col.Code(r)
			if pc < 0 || cc < 0 {
				continue // NaN cells contribute no factor
			}
			ll += math.Log(net.cpt[a][pc][cc])
		}
	}
	return ll
}

// Dependencies returns the learned edges sorted by descending mutual
// information — the "ranked attribute interactions" report.
func (net *Network) Dependencies() []Edge {
	out := append([]Edge(nil), net.Edges...)
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].MutualInformation > out[j].MutualInformation
	})
	return out
}

// Render prints the tree with per-edge MI, indented by depth.
func (net *Network) Render() string {
	children := map[string][]Edge{}
	for _, e := range net.Edges {
		children[e.Parent] = append(children[e.Parent], e)
	}
	var b strings.Builder
	var walk func(attr string, depth int)
	walk = func(attr string, depth int) {
		fmt.Fprintf(&b, "%s%s\n", strings.Repeat("  ", depth), attr)
		for _, e := range children[attr] {
			fmt.Fprintf(&b, "%s└─ (MI %.3f)\n", strings.Repeat("  ", depth), e.MutualInformation)
			walk(e.Child, depth+1)
		}
	}
	walk(net.Root, 0)
	return b.String()
}
