package bayesnet

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"dbexplorer/internal/datagen"
	"dbexplorer/internal/dataset"
	"dbexplorer/internal/dataview"
)

// chainData plants a Markov chain A -> B -> C plus an independent noise
// attribute N; the Chow-Liu tree must recover the chain and leave N
// attached with near-zero MI.
func chainData(t *testing.T, n int, seed int64) (*dataview.View, dataset.RowSet) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	tbl := dataset.NewTable("chain", dataset.Schema{
		{Name: "A", Kind: dataset.Categorical, Queriable: true},
		{Name: "B", Kind: dataset.Categorical, Queriable: true},
		{Name: "C", Kind: dataset.Categorical, Queriable: true},
		{Name: "N", Kind: dataset.Categorical, Queriable: true},
	})
	flip := func(v string, p float64, alt string) string {
		if rng.Float64() < p {
			return alt
		}
		return v
	}
	for i := 0; i < n; i++ {
		a := "a0"
		if rng.Float64() < 0.5 {
			a = "a1"
		}
		b := flip("b"+a[1:], 0.1, "b"+string('1'-a[1]+'0'))
		c := flip("c"+b[1:], 0.1, "c"+string('1'-b[1]+'0'))
		noise := []string{"n0", "n1", "n2"}[rng.Intn(3)]
		tbl.MustAppendRow(a, b, c, noise)
	}
	v, err := dataview.New(tbl, dataview.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return v, dataset.AllRows(n)
}

func TestLearnRecoversChain(t *testing.T) {
	v, rows := chainData(t, 3000, 1)
	net, err := Learn(v, rows, []string{"A", "B", "C", "N"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The chain structure: A-B and B-C must be tree edges (in either
	// direction); C must not hang off A directly.
	adj := map[string]string{}
	for _, e := range net.Edges {
		adj[e.Parent+"-"+e.Child] = ""
	}
	hasEdge := func(x, y string) bool {
		_, a := adj[x+"-"+y]
		_, b := adj[y+"-"+x]
		return a || b
	}
	if !hasEdge("A", "B") || !hasEdge("B", "C") {
		t.Errorf("chain not recovered: %+v", net.Edges)
	}
	if hasEdge("A", "C") {
		t.Errorf("spurious A-C edge: %+v", net.Edges)
	}
	// Noise attribute's edge carries the lowest MI.
	deps := net.Dependencies()
	last := deps[len(deps)-1]
	if last.Parent != "N" && last.Child != "N" {
		t.Errorf("noise attribute not weakest dependency: %+v", deps)
	}
	if last.MutualInformation > 0.05 {
		t.Errorf("noise MI = %g, want near 0", last.MutualInformation)
	}
}

func TestLearnExplicitRoot(t *testing.T) {
	v, rows := chainData(t, 1000, 2)
	net, err := Learn(v, rows, []string{"A", "B", "C", "N"}, Options{Root: "C"})
	if err != nil {
		t.Fatal(err)
	}
	if net.Root != "C" {
		t.Errorf("root = %q", net.Root)
	}
	if net.Parent("C") != "" {
		t.Errorf("root has parent %q", net.Parent("C"))
	}
	if _, err := Learn(v, rows, []string{"A", "B"}, Options{Root: "Zzz"}); err == nil {
		t.Error("unknown root: want error")
	}
}

func TestLearnErrors(t *testing.T) {
	v, rows := chainData(t, 100, 3)
	if _, err := Learn(v, rows, []string{"A"}, Options{}); err == nil {
		t.Error("one attribute: want error")
	}
	if _, err := Learn(v, nil, []string{"A", "B"}, Options{}); err == nil {
		t.Error("no rows: want error")
	}
	if _, err := Learn(v, rows, []string{"A", "Zzz"}, Options{}); err == nil {
		t.Error("unknown attribute: want error")
	}
	if _, err := Learn(v, rows, []string{"A", "A"}, Options{}); err == nil {
		t.Error("duplicate attribute: want error")
	}
}

func TestProbAndLogLikelihood(t *testing.T) {
	v, rows := chainData(t, 3000, 4)
	net, err := Learn(v, rows, []string{"A", "B", "C"}, Options{Root: "A"})
	if err != nil {
		t.Fatal(err)
	}
	// P(B=b0 | A=a0) should be near the planted 0.9.
	p, err := net.Prob("B", "b0", "a0")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.9) > 0.05 {
		t.Errorf("P(b0|a0) = %g, want ~0.9", p)
	}
	// CPT rows are distributions.
	for _, val := range []string{"a0", "a1"} {
		p0, _ := net.Prob("B", "b0", val)
		p1, _ := net.Prob("B", "b1", val)
		if math.Abs(p0+p1-1) > 1e-9 {
			t.Errorf("CPT row for A=%s sums to %g", val, p0+p1)
		}
	}
	// Root probability ignores the parent value.
	pr, err := net.Prob("A", "a0", "")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pr-0.5) > 0.05 {
		t.Errorf("P(a0) = %g, want ~0.5", pr)
	}
	// Error cases.
	if _, err := net.Prob("Zzz", "x", ""); err == nil {
		t.Error("unknown attribute: want error")
	}
	if _, err := net.Prob("B", "zzz", "a0"); err == nil {
		t.Error("unknown value: want error")
	}
	if _, err := net.Prob("B", "b0", "zzz"); err == nil {
		t.Error("unknown parent value: want error")
	}

	// Log-likelihood: the fitted network must beat an attribute-shuffled
	// one on held-in data.
	ll := net.LogLikelihood(rows)
	if ll >= 0 {
		t.Errorf("log-likelihood = %g, want negative", ll)
	}
	// Per-row average must beat the independent (log 1/2·1/2·1/2) bound
	// since the chain is strongly dependent.
	indep := float64(len(rows)) * 3 * math.Log(0.5)
	if ll <= indep {
		t.Errorf("chain model ll %g not better than independence bound %g", ll, indep)
	}
}

func TestLearnOnMushroom(t *testing.T) {
	tbl := datagen.MushroomN(3000, 5)
	v, err := dataview.New(tbl, dataview.Options{})
	if err != nil {
		t.Fatal(err)
	}
	attrs := []string{"Class", "Odor", "Bruises", "RingType", "SporePrintColor", "CapShape"}
	net, err := Learn(v, dataset.AllRows(tbl.NumRows()), attrs, Options{Root: "Class"})
	if err != nil {
		t.Fatal(err)
	}
	// The strongest dependency must involve Odor — the attribute the
	// latent subtype determines most sharply. (Odor–SporePrintColor can
	// legitimately beat Class–Odor: both are subtype-determined, while
	// the binary Class caps its MI at ln 2.)
	deps := net.Dependencies()
	top := deps[0]
	if top.Parent != "Odor" && top.Child != "Odor" {
		t.Errorf("strongest dependency = %+v, want one involving Odor", top)
	}
	if top.MutualInformation < 0.5 {
		t.Errorf("top dependency MI = %g, want strong", top.MutualInformation)
	}
	// Noise-like CapShape must carry the weakest edge.
	last := deps[len(deps)-1]
	if last.Parent != "CapShape" && last.Child != "CapShape" {
		t.Errorf("weakest dependency = %+v, want one involving CapShape", last)
	}
	// RingType must attach to Bruises (its generative parent), not to
	// Class directly.
	if p := net.Parent("RingType"); p != "Bruises" {
		t.Errorf("RingType parent = %q, want Bruises", p)
	}
	out := net.Render()
	for _, want := range []string{"Class", "Odor", "MI"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
