// Package fd discovers attribute interactions in the forms the paper's
// related work catalogs (§7): functional dependencies, approximate
// ("soft") functional dependencies, and correlated attribute pairs in
// the style of CORDS (Ilyas et al. [16]). These interaction reports are
// another data summary exploratory users can read alongside the CAD
// View ("Model determines Make"; "Engine correlates with FuelEconomy").
package fd

import (
	"fmt"
	"sort"

	"dbexplorer/internal/dataset"
	"dbexplorer/internal/dataview"
	"dbexplorer/internal/stats"
)

// Dependency is one discovered X → Y dependency.
type Dependency struct {
	// Determinant and Dependent name the attributes: Determinant → Dependent.
	Determinant, Dependent string
	// Error is the g3 measure: the minimum fraction of rows that must
	// be removed for the dependency to hold exactly. 0 means an exact
	// functional dependency.
	Error float64
}

// Exact reports whether the dependency holds with no violating rows.
func (d Dependency) Exact() bool { return d.Error == 0 }

// String renders "X -> Y (g3=...)".
func (d Dependency) String() string {
	if d.Exact() {
		return fmt.Sprintf("%s -> %s", d.Determinant, d.Dependent)
	}
	return fmt.Sprintf("%s -> %s (g3=%.4f)", d.Determinant, d.Dependent, d.Error)
}

// G3 computes the g3 error of X → Y over rows: for each X value keep the
// most common Y value and count everything else as violations.
func G3(v *dataview.View, rows dataset.RowSet, x, y string) (float64, error) {
	cx, err := v.Column(x)
	if err != nil {
		return 0, err
	}
	cy, err := v.Column(y)
	if err != nil {
		return 0, err
	}
	if x == y {
		return 0, fmt.Errorf("fd: determinant and dependent are both %q", x)
	}
	if len(rows) == 0 {
		return 0, fmt.Errorf("fd: empty row set")
	}
	counts := make([][]int, cx.Cardinality())
	labeled := 0
	for _, r := range rows {
		xc, yc := cx.Code(r), cy.Code(r)
		if xc < 0 || yc < 0 {
			continue // NaN cells join no (X, Y) group and cannot violate
		}
		labeled++
		if counts[xc] == nil {
			counts[xc] = make([]int, cy.Cardinality())
		}
		counts[xc][yc]++
	}
	if labeled == 0 {
		return 0, nil
	}
	kept := 0
	for _, row := range counts {
		best := 0
		for _, c := range row {
			if c > best {
				best = c
			}
		}
		kept += best
	}
	return 1 - float64(kept)/float64(labeled), nil
}

// Options configures discovery.
type Options struct {
	// MaxError is the g3 threshold below which a dependency is reported
	// (default 0.05; 0 keeps the default, use Exact for strictly exact
	// FDs).
	MaxError float64
	// Exact restricts the report to exact dependencies (g3 = 0).
	Exact bool
	// MinDeterminantCard skips trivial determinants whose cardinality
	// is below this (default 2): a constant column "determines"
	// everything vacuously only when cardinality 1 — and a key column
	// determines everything trivially, so determinants with cardinality
	// greater than MaxDeterminantFraction·|rows| are skipped too.
	MinDeterminantCard int
	// MaxDeterminantFraction bounds determinant cardinality relative to
	// the row count (default 0.5) to exclude near-key attributes.
	MaxDeterminantFraction float64
}

func (o Options) withDefaults() Options {
	if o.MaxError <= 0 {
		o.MaxError = 0.05
	}
	if o.MinDeterminantCard <= 0 {
		o.MinDeterminantCard = 2
	}
	if o.MaxDeterminantFraction <= 0 {
		o.MaxDeterminantFraction = 0.5
	}
	return o
}

// Discover finds single-attribute (approximate) functional dependencies
// X → Y among the given attributes over rows, sorted by ascending error
// then by name.
func Discover(v *dataview.View, rows dataset.RowSet, attrs []string, opt Options) ([]Dependency, error) {
	opt = opt.withDefaults()
	if len(attrs) < 2 {
		return nil, fmt.Errorf("fd: need at least 2 attributes, got %d", len(attrs))
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("fd: empty row set")
	}
	// Pre-validate and pre-compute live cardinalities.
	liveCard := make(map[string]int, len(attrs))
	for _, a := range attrs {
		col, err := v.Column(a)
		if err != nil {
			return nil, err
		}
		seen := map[int]bool{}
		for _, r := range rows {
			if c := col.Code(r); c >= 0 { // NaN cells are no live value
				seen[c] = true
			}
		}
		liveCard[a] = len(seen)
	}
	var out []Dependency
	for _, x := range attrs {
		if liveCard[x] < opt.MinDeterminantCard {
			continue
		}
		if float64(liveCard[x]) > opt.MaxDeterminantFraction*float64(len(rows)) {
			continue
		}
		for _, y := range attrs {
			if x == y || liveCard[y] < 2 {
				continue
			}
			g3, err := G3(v, rows, x, y)
			if err != nil {
				return nil, err
			}
			if opt.Exact && g3 != 0 {
				continue
			}
			if g3 <= opt.MaxError {
				out = append(out, Dependency{Determinant: x, Dependent: y, Error: g3})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Error != out[j].Error {
			return out[i].Error < out[j].Error
		}
		if out[i].Determinant != out[j].Determinant {
			return out[i].Determinant < out[j].Determinant
		}
		return out[i].Dependent < out[j].Dependent
	})
	return out, nil
}

// Correlation is a CORDS-style correlated attribute pair.
type Correlation struct {
	A, B string
	// CramerV is the chi-square effect size in [0, 1].
	CramerV float64
	// PValue is the chi-square independence test significance.
	PValue float64
}

// Correlations finds attribute pairs whose chi-square test rejects
// independence at the given significance with at least the given effect
// size (defaults 0.01 / 0.1), sorted by descending effect size. This is
// the sampling-free core of CORDS.
func Correlations(v *dataview.View, rows dataset.RowSet, attrs []string, significance, minEffect float64) ([]Correlation, error) {
	if significance <= 0 {
		significance = 0.01
	}
	if minEffect <= 0 {
		minEffect = 0.1
	}
	if len(attrs) < 2 {
		return nil, fmt.Errorf("fd: need at least 2 attributes, got %d", len(attrs))
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("fd: empty row set")
	}
	cols := make([]*dataview.Column, len(attrs))
	for i, a := range attrs {
		c, err := v.Column(a)
		if err != nil {
			return nil, err
		}
		cols[i] = c
	}
	var out []Correlation
	for i := 0; i < len(attrs); i++ {
		for j := i + 1; j < len(attrs); j++ {
			ct := stats.NewContingencyTable(cols[i].Cardinality(), cols[j].Cardinality())
			for _, r := range rows {
				ci, cj := cols[i].Code(r), cols[j].Code(r)
				if ci < 0 || cj < 0 {
					continue // NaN cells join no contingency cell
				}
				ct.Add(ci, cj)
			}
			res, err := stats.ChiSquare(ct)
			if err != nil {
				return nil, err
			}
			if res.PValue <= significance && res.CramerV >= minEffect {
				out = append(out, Correlation{A: attrs[i], B: attrs[j], CramerV: res.CramerV, PValue: res.PValue})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].CramerV != out[j].CramerV {
			return out[i].CramerV > out[j].CramerV
		}
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out, nil
}
