package fd

import (
	"math"

	"testing"

	"dbexplorer/internal/datagen"
	"dbexplorer/internal/dataset"
	"dbexplorer/internal/dataview"
)

func carsView(t *testing.T, n int) (*dataview.View, dataset.RowSet) {
	t.Helper()
	tbl := datagen.UsedCars(n, 1)
	v, err := dataview.New(tbl, dataview.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return v, dataset.AllRows(tbl.NumRows())
}

func TestG3ExactDependency(t *testing.T) {
	v, rows := carsView(t, 4000)
	// Model determines Make exactly by construction.
	g3, err := G3(v, rows, "Model", "Make")
	if err != nil {
		t.Fatal(err)
	}
	if g3 != 0 {
		t.Errorf("g3(Model -> Make) = %g, want 0", g3)
	}
	// The reverse does not hold: a make sells many models.
	back, err := G3(v, rows, "Make", "Model")
	if err != nil {
		t.Fatal(err)
	}
	if back < 0.3 {
		t.Errorf("g3(Make -> Model) = %g, want substantial", back)
	}
	// Color determines nothing.
	noise, err := G3(v, rows, "Color", "Make")
	if err != nil {
		t.Fatal(err)
	}
	if noise < 0.3 {
		t.Errorf("g3(Color -> Make) = %g, want large", noise)
	}
}

func TestG3Errors(t *testing.T) {
	v, rows := carsView(t, 100)
	if _, err := G3(v, rows, "Make", "Make"); err == nil {
		t.Error("X -> X: want error")
	}
	if _, err := G3(v, rows, "Nope", "Make"); err == nil {
		t.Error("unknown determinant: want error")
	}
	if _, err := G3(v, rows, "Make", "Nope"); err == nil {
		t.Error("unknown dependent: want error")
	}
	if _, err := G3(v, nil, "Model", "Make"); err == nil {
		t.Error("empty rows: want error")
	}
}

func TestDiscoverFindsModelMake(t *testing.T) {
	v, rows := carsView(t, 4000)
	deps, err := Discover(v, rows, []string{"Make", "Model", "BodyType", "Color"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range deps {
		if d.Determinant == "Model" && d.Dependent == "Make" {
			found = true
			if !d.Exact() {
				t.Errorf("Model -> Make should be exact: %v", d)
			}
			if d.String() != "Model -> Make" {
				t.Errorf("String() = %q", d.String())
			}
		}
		if d.Determinant == "Color" {
			t.Errorf("noise determinant reported: %v", d)
		}
	}
	if !found {
		t.Errorf("Model -> Make not discovered: %v", deps)
	}
	// Sorted ascending by error.
	for i := 1; i < len(deps); i++ {
		if deps[i].Error < deps[i-1].Error {
			t.Error("dependencies not error-sorted")
		}
	}
}

func TestDiscoverApproximate(t *testing.T) {
	v, rows := carsView(t, 4000)
	// Model determines BodyType exactly, and nearly determines Engine
	// (some model lines offer two engines). With a generous threshold
	// Model -> Engine should appear as approximate.
	deps, err := Discover(v, rows, []string{"Model", "Engine", "BodyType"}, Options{MaxError: 0.35})
	if err != nil {
		t.Fatal(err)
	}
	var bodyExact, engineApprox bool
	for _, d := range deps {
		if d.Determinant == "Model" && d.Dependent == "BodyType" && d.Exact() {
			bodyExact = true
		}
		if d.Determinant == "Model" && d.Dependent == "Engine" {
			engineApprox = true
			if d.Exact() {
				t.Log("Model -> Engine came out exact (acceptable if sampled models are single-engine)")
			}
			if got := d.String(); d.Error > 0 && got == "Model -> Engine" {
				t.Errorf("approximate dependency renders without g3: %q", got)
			}
		}
	}
	if !bodyExact {
		t.Errorf("Model -> BodyType not exact: %v", deps)
	}
	if !engineApprox {
		t.Errorf("Model -> Engine not reported at 0.35: %v", deps)
	}
	// Exact-only mode drops the approximate ones.
	exact, err := Discover(v, rows, []string{"Model", "Engine", "BodyType"}, Options{Exact: true, MaxError: 0.35})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range exact {
		if !d.Exact() {
			t.Errorf("non-exact dependency in exact mode: %v", d)
		}
	}
}

func TestDiscoverSkipsDegenerates(t *testing.T) {
	tbl := dataset.NewTable("t", dataset.Schema{
		{Name: "Const", Kind: dataset.Categorical, Queriable: true},
		{Name: "Key", Kind: dataset.Categorical, Queriable: true},
		{Name: "A", Kind: dataset.Categorical, Queriable: true},
		{Name: "B", Kind: dataset.Categorical, Queriable: true},
	})
	for i := 0; i < 100; i++ {
		a := "a0"
		if i%2 == 0 {
			a = "a1"
		}
		tbl.MustAppendRow("c", key(i), a, "b"+a[1:])
	}
	v, err := dataview.New(tbl, dataview.Options{})
	if err != nil {
		t.Fatal(err)
	}
	deps, err := Discover(v, dataset.AllRows(100), []string{"Const", "Key", "A", "B"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range deps {
		if d.Determinant == "Const" {
			t.Errorf("constant column as determinant: %v", d)
		}
		if d.Determinant == "Key" {
			t.Errorf("key column as determinant: %v", d)
		}
		if d.Dependent == "Const" {
			t.Errorf("constant column as dependent (vacuous): %v", d)
		}
	}
	// A <-> B is a real mutual dependency and must be found both ways.
	both := 0
	for _, d := range deps {
		if (d.Determinant == "A" && d.Dependent == "B") || (d.Determinant == "B" && d.Dependent == "A") {
			both++
		}
	}
	if both != 2 {
		t.Errorf("A<->B not fully discovered: %v", deps)
	}
}

func key(i int) string { return string(rune('a'+i/26)) + string(rune('a'+i%26)) }

func TestDiscoverErrors(t *testing.T) {
	v, rows := carsView(t, 100)
	if _, err := Discover(v, rows, []string{"Make"}, Options{}); err == nil {
		t.Error("one attribute: want error")
	}
	if _, err := Discover(v, nil, []string{"Make", "Model"}, Options{}); err == nil {
		t.Error("no rows: want error")
	}
	if _, err := Discover(v, rows, []string{"Make", "Nope"}, Options{}); err == nil {
		t.Error("unknown attribute: want error")
	}
}

func TestCorrelations(t *testing.T) {
	v, rows := carsView(t, 4000)
	corrs, err := Correlations(v, rows, []string{"Make", "Model", "Engine", "FuelEconomy", "Color"}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(corrs) == 0 {
		t.Fatal("no correlations found")
	}
	// Strongest should involve Model (which determines nearly everything).
	if corrs[0].A != "Model" && corrs[0].B != "Model" {
		t.Errorf("strongest correlation = %+v, want one involving Model", corrs[0])
	}
	// Color must not correlate with anything.
	for _, c := range corrs {
		if c.A == "Color" || c.B == "Color" {
			t.Errorf("noise correlation reported: %+v", c)
		}
		if c.CramerV < 0.1 || c.PValue > 0.01 {
			t.Errorf("weak correlation reported: %+v", c)
		}
	}
	// Engine-FuelEconomy is a planted physical correlation.
	found := false
	for _, c := range corrs {
		if (c.A == "Engine" && c.B == "FuelEconomy") || (c.A == "FuelEconomy" && c.B == "Engine") {
			found = true
		}
	}
	if !found {
		t.Errorf("Engine-FuelEconomy not found: %+v", corrs)
	}
	// Sorted by descending effect size.
	for i := 1; i < len(corrs); i++ {
		if corrs[i].CramerV > corrs[i-1].CramerV {
			t.Error("correlations not sorted")
		}
	}
}

func TestCorrelationsErrors(t *testing.T) {
	v, rows := carsView(t, 100)
	if _, err := Correlations(v, rows, []string{"Make"}, 0, 0); err == nil {
		t.Error("one attribute: want error")
	}
	if _, err := Correlations(v, nil, []string{"Make", "Model"}, 0, 0); err == nil {
		t.Error("no rows: want error")
	}
	if _, err := Correlations(v, rows, []string{"Make", "Nope"}, 0, 0); err == nil {
		t.Error("unknown attribute: want error")
	}
}

// nanCarsView appends rows with a NaN numeric cell (the missing-value
// code -1) to the fixture, reproducing a live-ingested table with null
// cells. Discovery over numeric attributes must skip those cells, not
// index by -1.
func nanCarsView(t *testing.T, n int) (*dataview.View, dataset.RowSet) {
	t.Helper()
	tbl := datagen.UsedCars(n, 1)
	row := make([]any, len(tbl.Schema()))
	for i, a := range tbl.Schema() {
		if a.Kind == dataset.Categorical {
			row[i] = tbl.Cat(i).Value(0)
		} else {
			row[i] = math.NaN()
		}
	}
	for i := 0; i < 5; i++ {
		tbl.MustAppendRow(row...)
	}
	v, err := dataview.New(tbl, dataview.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return v, dataset.AllRows(tbl.NumRows())
}

// TestDiscoverSkipsNaNCells pins the ingest regression: G3, Discover,
// and Correlations over a table with NaN numeric cells must not panic
// (codes are -1) and must score as if the NaN rows were absent.
func TestDiscoverSkipsNaNCells(t *testing.T) {
	v, rows := nanCarsView(t, 1000)
	attrs := []string{"Make", "Model", "Price", "Year"}
	if _, err := Discover(v, rows, attrs, Options{}); err != nil {
		t.Fatalf("Discover over NaN cells: %v", err)
	}
	if _, err := Correlations(v, rows, attrs, 0, 0); err != nil {
		t.Fatalf("Correlations over NaN cells: %v", err)
	}
	// g3 must match the same dependency computed without the NaN rows.
	withNaN, err := G3(v, rows, "Price", "Make")
	if err != nil {
		t.Fatal(err)
	}
	clean := rows[:1000]
	without, err := G3(v, clean, "Price", "Make")
	if err != nil {
		t.Fatal(err)
	}
	if withNaN != without {
		t.Errorf("g3 with NaN rows = %g, without = %g; NaN cells must not count", withNaN, without)
	}
}
