// Package simuser replicates the paper's §6.2 user study with simulated
// subjects (DESIGN.md substitution 3). Each of the eight users is an
// agent that performs the three exploration tasks through one of two
// interfaces — the Solr-style faceted baseline or TPFacet with the CAD
// View — by issuing interface operations with realistic time costs.
//
// The interfaces differ in what information one operation exposes, and
// that asymmetry (not hard-coded outcomes) produces the paper's result:
// a Solr user learns one filtered digest per apply/read/remove cycle and
// must order their search by what the digest shows (value counts), while
// a TPFacet user reads contrast-ranked Compare Attributes and IUnit
// labels directly, so their candidate list starts with the
// discriminative values. Quality metrics (F1, similarity rank, retrieval
// error) are computed for real on the dataset from the selections each
// agent actually makes.
package simuser

import (
	"fmt"
	"math/rand"

	"dbexplorer/internal/dataview"
)

// Interface identifies the search interface a task run uses.
type Interface int

const (
	// Solr is the faceted baseline (digest + filters only).
	Solr Interface = iota
	// TPFacet is the two-phased faceted interface with the CAD View.
	TPFacet
)

// String returns "Solr" or "TPFacet".
func (i Interface) String() string {
	if i == Solr {
		return "Solr"
	}
	return "TPFacet"
}

// Operation time costs, in seconds. Calibrated so task completion times
// land on the paper's minute scale (Solr roughly 6-16 minutes per task,
// TPFacet roughly 2-5).
const (
	costApplyFilter   = 3.0
	costRemoveFilter  = 2.0
	costReadCount     = 2.0
	costScanValue     = 0.35 // per digest value skimmed
	costCompareDigest = 60.0 // manually comparing two summary digests
	costRecordDigest  = 15.0 // noting down one digest for later comparison
	costBuildCADView  = 4.0  // request + render
	costReadCADRow    = 12.0 // absorbing one pivot row's IUnits
	costClick         = 3.0  // highlight or reorder click
	costObserve       = 5.0  // taking in a highlight/reorder effect
	costThink         = 6.0  // one decision step
)

// User is one simulated subject. Speed scales all operation times
// (slower users > 1); Diligence in (0, 1] scales how much of the search
// space the user is willing to examine and how carefully they estimate.
type User struct {
	ID        int
	Speed     float64
	Diligence float64
}

// NewUsers draws n subjects with seeded per-user speed and diligence,
// mirroring the study's eight graduate students (IDs are 1-based, U1-U8).
func NewUsers(n int, seed int64) []User {
	rng := rand.New(rand.NewSource(seed))
	users := make([]User, n)
	for i := range users {
		users[i] = User{
			ID:        i + 1,
			Speed:     0.8 + rng.Float64()*0.5,
			Diligence: 0.55 + rng.Float64()*0.45,
		}
	}
	return users
}

// clock accumulates a task run's interface operations and wall time.
// Each operation's duration carries human jitter (±15% lognormal-ish)
// when an rng is attached.
type clock struct {
	seconds float64
	ops     int
	speed   float64
	rng     *rand.Rand
}

func (c *clock) spend(sec float64) {
	jitter := 1.0
	if c.rng != nil {
		jitter = 1 + 0.15*c.rng.NormFloat64()
		if jitter < 0.4 {
			jitter = 0.4
		}
	}
	c.seconds += sec * c.speed * jitter
	c.ops++
}

// minutes returns accumulated time in minutes.
func (c *clock) minutes() float64 { return c.seconds / 60 }

// Outcome is one (user, interface) cell of a study figure.
type Outcome struct {
	UserID  int
	Iface   Interface
	Variant string // which task of the matched pair the user performed
	// Quality is the task's metric: F1 for the classifier task, chosen
	// pair's ground-truth rank for the similar-pair task, retrieval
	// error for the alternative-condition task.
	Quality float64
	Minutes float64
	Ops     int
	// Answer describes what the user submitted, for inspection.
	Answer string
}

// valueRef names one attribute value.
type valueRef struct {
	Attr  string
	Value string
}

func (v valueRef) String() string { return v.Attr + "=" + v.Value }

// selection is a user's submitted set of at most two attribute values;
// faceted semantics apply (same attribute ORs, different attributes AND).
type selection []valueRef

func (s selection) String() string {
	out := ""
	for i, v := range s {
		if i > 0 {
			out += " & "
		}
		out += v.String()
	}
	if out == "" {
		return "(empty)"
	}
	return out
}

// allValues enumerates every (attribute, value) pair of the view except
// the excluded attributes, in schema order.
func allValues(v *dataview.View, exclude map[string]bool) []valueRef {
	var out []valueRef
	for _, col := range v.Columns() {
		if exclude[col.Attr] {
			continue
		}
		for code := 0; code < col.Cardinality(); code++ {
			out = append(out, valueRef{Attr: col.Attr, Value: col.Label(code)})
		}
	}
	return out
}

func checkUser(u User) error {
	if u.Speed <= 0 || u.Diligence <= 0 || u.Diligence > 1 {
		return fmt.Errorf("simuser: bad user parameters %+v", u)
	}
	return nil
}
