package simuser

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/url"

	"dbexplorer/internal/dataset"
	"dbexplorer/internal/dataview"
	"dbexplorer/internal/suggest"
)

// Guided-session operation costs, in seconds: one /suggest round trip is
// far cheaper than manually comparing digests — the service surfaces the
// ranked refinements the baseline user reconstructs by hand.
const (
	costSuggestCall = 1.5 // request + glancing at the ranked list
)

// SuggestClient calls one dataset's /api/v1/{dataset}/suggest endpoint —
// the guided session models talk to the serving stack over real HTTP,
// exactly as an interface frontend would.
type SuggestClient struct {
	// BaseURL is the server root, e.g. an httptest.Server URL.
	BaseURL string
	// Dataset is the registered dataset name.
	Dataset string
	// HTTP is the client to use; nil means http.DefaultClient.
	HTTP *http.Client
}

// guidedFilter mirrors httpapi.Filter (facet semantics: values of one
// attribute OR, attributes AND) without importing the serving package.
type guidedFilter struct {
	Attr   string   `json:"attr"`
	Values []string `json:"values"`
}

// drillResponse is the drill-down mode envelope of /suggest.
type drillResponse struct {
	DrillDown *suggest.DrillDown `json:"drilldown"`
}

// Drill posts the filter set and returns the service's drill-down
// recommendations. An empty filter set asks for starting points.
func (c *SuggestClient) Drill(ctx context.Context, filters []guidedFilter, opts suggest.Options) (*suggest.DrillDown, error) {
	body, err := json.Marshal(map[string]any{
		"filters":   filters,
		"limit":     opts.Limit,
		"maxValues": opts.MaxValues,
	})
	if err != nil {
		return nil, err
	}
	u := c.BaseURL + "/api/v1/" + url.PathEscape(c.Dataset) + "/suggest"
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	hc := c.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("simuser: suggest returned %s", resp.Status)
	}
	var out drillResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	if out.DrillDown == nil {
		return nil, fmt.Errorf("simuser: suggest response missing drilldown")
	}
	return out.DrillDown, nil
}

// GuidedDrillTask is a guided variant of the alternative-condition
// setting: the user knows which attribute values characterize their
// information need (Target) and narrows the result set step by step, but
// instead of scanning raw digests they consult the /suggest service
// between drill-down steps and follow its recommendations. Quality is
// the same retrieval error the §6.2.3 task reports.
type GuidedDrillTask struct {
	Target []struct{ Attr, Value string }
	// MaxSteps bounds the session length (0 = one step per target value
	// plus two).
	MaxSteps int
	Variant  string
}

// RunGuidedDrill executes one guided drill-down session for one user
// against a live serving stack. Between steps the user calls /suggest
// with the filters applied so far; they select a surfaced target value
// when the service shows one (recognition, not recall), and otherwise
// follow the top recommendation — diligent users read further down the
// ranked list before settling.
func RunGuidedDrill(ctx context.Context, v *dataview.View, sc *SuggestClient, task GuidedDrillTask, u User, seed int64) (Outcome, error) {
	if err := checkUser(u); err != nil {
		return Outcome{}, err
	}
	if len(task.Target) == 0 {
		return Outcome{}, fmt.Errorf("simuser: guided drill task needs target values")
	}
	base := dataset.AllRows(v.Table().NumRows())
	var targetSel selection
	wanted := map[valueRef]bool{}
	for _, g := range task.Target {
		ref := valueRef{g.Attr, g.Value}
		targetSel = append(targetSel, ref)
		wanted[ref] = true
	}
	target := selectionRows(v, base, targetSel)
	if len(target) == 0 {
		return Outcome{}, fmt.Errorf("simuser: target condition %s selects nothing", targetSel)
	}
	maxSteps := task.MaxSteps
	if maxSteps <= 0 {
		maxSteps = len(task.Target) + 2
	}

	rng := rand.New(rand.NewSource(seed ^ int64(u.ID)<<8))
	cl := &clock{speed: u.Speed, rng: rng}

	var chosen selection
	var filters []guidedFilter
	used := map[string]bool{}
	for step := 0; step < maxSteps; step++ {
		d, err := sc.Drill(ctx, filters, suggest.Options{})
		if err != nil {
			return Outcome{}, err
		}
		cl.spend(costSuggestCall)
		if d.DeadEnd || len(d.Attrs) == 0 {
			break
		}
		// Diligence bounds how much of the ranked list the user reads.
		examine := 1 + int(math.Round(u.Diligence*float64(len(d.Attrs)-1)))
		var pick valueRef
		found := false
		for _, a := range d.Attrs[:examine] {
			cl.spend(float64(len(a.Values)) * costScanValue)
			for _, val := range a.Values {
				ref := valueRef{a.Attr, val.Value}
				if wanted[ref] && !used[a.Attr] && !val.DeadEnd {
					pick, found = ref, true
					break
				}
			}
			if found {
				break
			}
		}
		if !found {
			// No target value surfaced: follow the top recommendation —
			// the highest-ranked unused attribute's largest live value.
			for _, a := range d.Attrs {
				if used[a.Attr] {
					continue
				}
				for _, val := range a.Values {
					if !val.DeadEnd {
						pick, found = valueRef{a.Attr, val.Value}, true
						break
					}
				}
				if found {
					break
				}
			}
		}
		if !found {
			break
		}
		cl.spend(costApplyFilter + costThink*0.5)
		chosen = append(chosen, pick)
		used[pick.Attr] = true
		filters = append(filters, guidedFilter{Attr: pick.Attr, Values: []string{pick.Value}})
		// Stop once every target value is applied or the set browses.
		done := true
		for ref := range wanted {
			if !containsRef(chosen, ref) {
				done = false
				break
			}
		}
		if done || d.Total <= 50 {
			break
		}
	}
	if len(chosen) == 0 {
		return Outcome{}, fmt.Errorf("simuser: guided session applied no filters")
	}
	cl.spend(costThink)
	reached := selectionRows(v, base, chosen)
	return Outcome{
		UserID:  u.ID,
		Iface:   TPFacet,
		Variant: task.Variant,
		Quality: retrievalError(v, target, reached),
		Minutes: cl.minutes(),
		Ops:     cl.ops,
		Answer:  chosen.String(),
	}, nil
}

func containsRef(sel selection, ref valueRef) bool {
	for _, r := range sel {
		if r == ref {
			return true
		}
	}
	return false
}
