package simuser

import (
	"testing"

	"dbexplorer/internal/dataset"
)

func TestClockAccounting(t *testing.T) {
	c := &clock{speed: 2}
	c.spend(30)
	c.spend(30)
	if c.ops != 2 {
		t.Errorf("ops = %d", c.ops)
	}
	if c.minutes() != 2 {
		t.Errorf("minutes = %g, want 2 (speed doubles time)", c.minutes())
	}
	fast := &clock{speed: 0.5}
	fast.spend(60)
	if fast.minutes() != 0.5 {
		t.Errorf("fast minutes = %g", fast.minutes())
	}
}

func TestCheckUser(t *testing.T) {
	good := User{ID: 1, Speed: 1, Diligence: 0.8}
	if err := checkUser(good); err != nil {
		t.Errorf("good user rejected: %v", err)
	}
	bad := []User{
		{},
		{ID: 1, Speed: 0, Diligence: 0.5},
		{ID: 1, Speed: 1, Diligence: 0},
		{ID: 1, Speed: 1, Diligence: 1.5},
	}
	for _, u := range bad {
		if err := checkUser(u); err == nil {
			t.Errorf("bad user accepted: %+v", u)
		}
	}
}

func TestValueRefAndSelectionStrings(t *testing.T) {
	r := valueRef{"Odor", "foul"}
	if r.String() != "Odor=foul" {
		t.Errorf("valueRef = %q", r.String())
	}
	s := selection{r, {"Bruises", "false"}}
	if s.String() != "Odor=foul & Bruises=false" {
		t.Errorf("selection = %q", s.String())
	}
	if (selection{}).String() != "(empty)" {
		t.Error("empty selection string")
	}
}

func TestAllValues(t *testing.T) {
	v := mushroomView(t)
	vals := allValues(v, map[string]bool{"Class": true})
	if len(vals) == 0 {
		t.Fatal("no values")
	}
	for _, r := range vals {
		if r.Attr == "Class" {
			t.Fatal("excluded attribute leaked")
		}
	}
	// Every queriable attribute except Class contributes.
	attrs := map[string]bool{}
	for _, r := range vals {
		attrs[r.Attr] = true
	}
	if len(attrs) != 22 {
		t.Errorf("attributes covered = %d, want 22", len(attrs))
	}
}

func TestRetrievalErrorProperties(t *testing.T) {
	v := mushroomView(t)
	base := dataset.AllRows(v.Table().NumRows())
	target := selectionRows(v, base, selection{{Attr: "Odor", Value: "foul"}})
	if e := retrievalError(v, target, target); e > 1e-9 {
		t.Errorf("self retrieval error = %g", e)
	}
	other := selectionRows(v, base, selection{{Attr: "Odor", Value: "almond"}})
	if e := retrievalError(v, target, other); e <= 0 {
		t.Errorf("disjoint sets error = %g, want positive", e)
	}
	near := selectionRows(v, base, selection{{Attr: "StalkSurfaceAboveRing", Value: "silky"}})
	eNear := retrievalError(v, target, near)
	eFar := retrievalError(v, target, other)
	if eNear >= eFar {
		t.Errorf("planted surrogate error %g >= unrelated error %g", eNear, eFar)
	}
}

func TestPairGroundTruth(t *testing.T) {
	v := mushroomView(t)
	base := dataset.AllRows(v.Table().NumRows())
	task := SimilarPairTask{Attr: "GillColor", Values: []string{"buff", "white", "brown", "green"}}
	pairs, sims, err := pairGroundTruth(v, base, task)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 6 || len(sims) != 6 {
		t.Fatalf("pairs = %d", len(pairs))
	}
	top := pairs[0]
	if !(top.A == "white" && top.B == "brown") && !(top.A == "brown" && top.B == "white") {
		t.Errorf("top pair = %v, want brown/white", top)
	}
	for i := 1; i < len(sims); i++ {
		if sims[i] > sims[i-1] {
			t.Error("similarities not sorted")
		}
	}
	if rankOf(pairs, top) != 1 {
		t.Error("rankOf top != 1")
	}
	if rankOf(pairs, pair{"white", "brown"}) != rankOf(pairs, pair{"brown", "white"}) {
		t.Error("rankOf not symmetric")
	}
	if rankOf(pairs, pair{"nope", "nope2"}) != 7 {
		t.Error("unknown pair should rank len+1")
	}
	if _, _, err := pairGroundTruth(v, base, SimilarPairTask{Attr: "GillColor", Values: []string{"buff", "nope"}}); err == nil {
		t.Error("unknown value: want error")
	}
	if _, _, err := pairGroundTruth(v, base, SimilarPairTask{Attr: "Nope", Values: []string{"a", "b"}}); err == nil {
		t.Error("unknown attribute: want error")
	}
}

func TestSolrSlowerButDiligenceHelps(t *testing.T) {
	// Higher diligence means more trials: more time, at least as good
	// quality in expectation. Check time monotonicity on one seed.
	v := mushroomView(t)
	task := ClassifierTask{ClassAttr: "Bruises", TargetValue: "true", Variant: "t"}
	lazy := User{ID: 1, Speed: 1, Diligence: 0.55}
	keen := User{ID: 1, Speed: 1, Diligence: 1.0}
	oLazy, err := RunClassifier(v, task, lazy, Solr, 9)
	if err != nil {
		t.Fatal(err)
	}
	oKeen, err := RunClassifier(v, task, keen, Solr, 9)
	if err != nil {
		t.Fatal(err)
	}
	if oKeen.Minutes <= oLazy.Minutes {
		t.Errorf("diligent user not slower: %.1f <= %.1f", oKeen.Minutes, oLazy.Minutes)
	}
	if oKeen.Ops <= oLazy.Ops {
		t.Errorf("diligent user did fewer ops: %d <= %d", oKeen.Ops, oLazy.Ops)
	}
}
