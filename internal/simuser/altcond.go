package simuser

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"dbexplorer/internal/core"
	"dbexplorer/internal/dataset"
	"dbexplorer/internal/dataview"
	"dbexplorer/internal/facet"
)

// AltCondTask is §6.2.3: given a selection condition, find a different
// selection of at most two attribute values leading to (nearly) the same
// result set. Quality is the retrieval error — the digest dissimilarity
// between the target result set and the user's alternative, scaled by
// the attribute count so values land on the paper's 0-1.5 range.
type AltCondTask struct {
	Given   []struct{ Attr, Value string }
	Variant string
}

// retrievalError measures how far a candidate result set's digest is
// from the target's.
func retrievalError(v *dataview.View, target, got dataset.RowSet) float64 {
	dt := facet.Summarize(v, target, true)
	dg := facet.Summarize(v, got, true)
	return (1 - facet.DigestSimilarity(dt, dg)) * float64(len(v.Columns()))
}

// RunAltCond executes the alternative-search-condition task for one user.
func RunAltCond(v *dataview.View, task AltCondTask, u User, iface Interface, seed int64) (Outcome, error) {
	if err := checkUser(u); err != nil {
		return Outcome{}, err
	}
	if len(task.Given) == 0 {
		return Outcome{}, fmt.Errorf("simuser: alternative-condition task needs given conditions")
	}
	base := dataset.AllRows(v.Table().NumRows())
	var givenSel selection
	forbidden := map[valueRef]bool{}
	for _, g := range task.Given {
		ref := valueRef{g.Attr, g.Value}
		givenSel = append(givenSel, ref)
		forbidden[ref] = true
	}
	target := selectionRows(v, base, givenSel)
	if len(target) == 0 {
		return Outcome{}, fmt.Errorf("simuser: given condition %s selects nothing", givenSel)
	}

	rng := rand.New(rand.NewSource(seed ^ int64(u.ID)<<8 ^ int64(iface)))
	cl := &clock{speed: u.Speed, rng: rng}

	var candidates []valueRef
	var trialCost float64
	var nTrials int
	switch iface {
	case Solr:
		candidates = solrAltCandidates(v, target, forbidden, u, rng, cl)
		trialCost = costApplyFilter + costCompareDigest + costRemoveFilter
		nTrials = int(math.Round(3 + 6*u.Diligence))
	case TPFacet:
		var err error
		candidates, err = tpfacetAltCandidates(v, base, target, task, forbidden, u, cl)
		if err != nil {
			return Outcome{}, err
		}
		// The paper notes this task stayed comparison-heavy even with
		// the CAD View: users manually differentiate IUnits, so each
		// trial still involves most of a digest comparison. The win is
		// needing far fewer trials.
		trialCost = costApplyFilter + 0.7*costCompareDigest + costRemoveFilter
		nTrials = int(math.Round(3 + 3*u.Diligence))
	}
	if len(candidates) == 0 {
		return Outcome{}, fmt.Errorf("simuser: no alternative candidates")
	}

	errOf := func(sel selection) float64 {
		return retrievalError(v, target, selectionRows(v, base, sel))
	}
	estNoise := map[Interface]float64{Solr: 0.20, TPFacet: 0.05}[iface] * (1.2 - u.Diligence)

	type scored struct {
		sel selection
		est float64
		tru float64
	}
	var tried []scored
	// Single-value trials first.
	n := nTrials
	if n > len(candidates) {
		n = len(candidates)
	}
	for _, c := range candidates[:n] {
		cl.spend(trialCost)
		sel := selection{c}
		e := errOf(sel)
		tried = append(tried, scored{sel, e + rng.NormFloat64()*estNoise, e})
	}
	sort.Slice(tried, func(i, j int) bool { return tried[i].est < tried[j].est })
	// Pair trials around the best singles, unless a single already looks
	// essentially perfect.
	if tried[0].est > 0.05 {
		nPairs := nTrials / 2
		top := 2
		if top > len(tried) {
			top = len(tried)
		}
		count := 0
		for i := 0; i < top && count < nPairs; i++ {
			for j := 0; j < len(tried) && count < nPairs; j++ {
				if i == j || tried[i].sel[0] == tried[j].sel[0] {
					continue
				}
				cl.spend(trialCost + costApplyFilter)
				sel := selection{tried[i].sel[0], tried[j].sel[0]}
				e := errOf(sel)
				tried = append(tried, scored{sel, e + rng.NormFloat64()*estNoise, e})
				count++
			}
		}
		sort.Slice(tried, func(i, j int) bool { return tried[i].est < tried[j].est })
	}
	cl.spend(2 * costThink)
	best := tried[0]
	return Outcome{
		UserID:  u.ID,
		Iface:   iface,
		Variant: task.Variant,
		Quality: best.tru,
		Minutes: cl.minutes(),
		Ops:     cl.ops,
		Answer:  best.sel.String(),
	}, nil
}

// solrAltCandidates orders candidates the way the baseline digest shows
// them: values prominent *within the target result set*, which includes
// globally common but non-discriminative values (the hit-and-trial trap
// the paper describes).
func solrAltCandidates(v *dataview.View, target dataset.RowSet, forbidden map[valueRef]bool, u User, rng *rand.Rand, cl *clock) []valueRef {
	// Apply the given filters and scan the resulting digest.
	cl.spend(2 * costApplyFilter)
	d := facet.Summarize(v, target, true)
	for _, a := range d.Attrs {
		n := len(a.Values)
		if n > 8 {
			n = 8
		}
		cl.spend(float64(n) * costScanValue)
	}
	noise := 0.5 * (1.3 - u.Diligence)
	type ranked struct {
		ref   valueRef
		score float64
	}
	var rs []ranked
	for _, a := range d.Attrs {
		for _, vc := range a.Values {
			ref := valueRef{a.Attr, vc.Value}
			if forbidden[ref] {
				continue
			}
			rs = append(rs, ranked{ref, float64(vc.Count) * math.Exp(rng.NormFloat64()*noise)})
		}
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].score > rs[j].score })
	out := make([]valueRef, len(rs))
	for i, r := range rs {
		out[i] = r.ref
	}
	return out
}

// tpfacetAltCandidates reads the CAD View built over the whole dataset
// with the first given attribute as pivot: the target value's row shows
// which values co-occur with it distinctively, so candidates are ordered
// by discriminativeness (share in target vs share elsewhere), not raw
// count.
func tpfacetAltCandidates(v *dataview.View, base, target dataset.RowSet, task AltCondTask, forbidden map[valueRef]bool, u User, cl *clock) ([]valueRef, error) {
	view, _, err := core.Build(v, base, core.Config{
		Pivot: task.Given[0].Attr,
		K:     3,
		Seed:  int64(u.ID),
	})
	if err != nil {
		return nil, err
	}
	cl.spend(costBuildCADView + 4*costReadCADRow + costClick + costObserve)

	// The user cross-references the displayed values against the target
	// row's IUnits: a displayed value is a good surrogate when it is
	// frequent inside the target set and rare outside it — exactly what
	// the contrast between pivot rows shows.
	rest := base.Minus(target)
	type ranked struct {
		ref   valueRef
		score float64
	}
	var rs []ranked
	seen := map[valueRef]bool{}
	for _, row := range view.Rows {
		for _, iu := range row.IUnits {
			for _, l := range iu.Labels {
				for _, g := range l.Groups {
					for _, val := range g.Values {
						ref := valueRef{l.Attr, val}
						if forbidden[ref] || seen[ref] {
							continue
						}
						seen[ref] = true
						col, err := v.Column(ref.Attr)
						if err != nil {
							return nil, err
						}
						code := col.CodeOf(val)
						inT, inRest := 0, 0
						for _, r := range target {
							if col.Code(r) == code {
								inT++
							}
						}
						for _, r := range rest {
							if col.Code(r) == code {
								inRest++
							}
						}
						shareT := float64(inT) / float64(len(target))
						shareRest := 0.0
						if len(rest) > 0 {
							shareRest = float64(inRest) / float64(len(rest))
						}
						rs = append(rs, ranked{ref, shareT * (shareT - shareRest)})
					}
				}
			}
		}
	}
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].score != rs[j].score {
			return rs[i].score > rs[j].score
		}
		return rs[i].ref.String() < rs[j].ref.String()
	})
	out := make([]valueRef, len(rs))
	for i, r := range rs {
		out[i] = r.ref
	}
	return out, nil
}
