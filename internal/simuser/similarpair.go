package simuser

import (
	"fmt"
	"math/rand"
	"sort"

	"dbexplorer/internal/core"
	"dbexplorer/internal/dataset"
	"dbexplorer/internal/dataview"
	"dbexplorer/internal/facet"
)

// SimilarPairTask is §6.2.2: given four values of one attribute, find the
// two most similar values. Ground truth is the digest-cosine similarity
// metric the paper gave its subjects; the outcome's Quality is the rank
// (1 = best of the six pairs) of the user's chosen pair under that
// metric.
type SimilarPairTask struct {
	Attr    string
	Values  []string // exactly four values
	Variant string
}

type pair struct{ A, B string }

func (p pair) String() string { return p.A + "/" + p.B }

// pairGroundTruth ranks all value pairs by digest similarity, most
// similar first.
func pairGroundTruth(v *dataview.View, base dataset.RowSet, task SimilarPairTask) ([]pair, []float64, error) {
	col, err := v.Column(task.Attr)
	if err != nil {
		return nil, nil, err
	}
	digests := map[string]*facet.Digest{}
	for _, val := range task.Values {
		code := col.CodeOf(val)
		if code < 0 {
			return nil, nil, fmt.Errorf("simuser: attribute %q has no value %q", task.Attr, val)
		}
		rows := base.Filter(func(r int) bool { return col.Code(r) == code })
		digests[val] = facet.Summarize(v, rows, true)
	}
	type scored struct {
		p pair
		s float64
	}
	var all []scored
	for i := 0; i < len(task.Values); i++ {
		for j := i + 1; j < len(task.Values); j++ {
			p := pair{task.Values[i], task.Values[j]}
			all = append(all, scored{p, facet.DigestSimilarity(digests[p.A], digests[p.B])})
		}
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].s > all[j].s })
	pairs := make([]pair, len(all))
	sims := make([]float64, len(all))
	for i, s := range all {
		pairs[i] = s.p
		sims[i] = s.s
	}
	return pairs, sims, nil
}

func rankOf(pairs []pair, chosen pair) float64 {
	for i, p := range pairs {
		if p == chosen || (p.A == chosen.B && p.B == chosen.A) {
			return float64(i + 1)
		}
	}
	return float64(len(pairs) + 1)
}

// RunSimilarPair executes the similar-pair task for one user.
func RunSimilarPair(v *dataview.View, task SimilarPairTask, u User, iface Interface, seed int64) (Outcome, error) {
	if err := checkUser(u); err != nil {
		return Outcome{}, err
	}
	if len(task.Values) != 4 {
		return Outcome{}, fmt.Errorf("simuser: similar-pair task needs 4 values, got %d", len(task.Values))
	}
	base := dataset.AllRows(v.Table().NumRows())
	truth, sims, err := pairGroundTruth(v, base, task)
	if err != nil {
		return Outcome{}, err
	}
	rng := rand.New(rand.NewSource(seed ^ int64(u.ID)<<8 ^ int64(iface)))
	cl := &clock{speed: u.Speed, rng: rng}

	var chosen pair
	switch iface {
	case Solr:
		chosen = solrSimilarPair(task, truth, sims, u, rng, cl)
	case TPFacet:
		chosen, err = tpfacetSimilarPair(v, base, task, u, cl)
		if err != nil {
			return Outcome{}, err
		}
	}
	return Outcome{
		UserID:  u.ID,
		Iface:   iface,
		Variant: task.Variant,
		Quality: rankOf(truth, chosen),
		Minutes: cl.minutes(),
		Ops:     cl.ops,
		Answer:  chosen.String(),
	}, nil
}

// solrSimilarPair models the baseline procedure the paper prescribed:
// select each value, record its digest, then manually compare the six
// digest pairs with the given cosine metric. Manual comparison is slow
// and noisy.
func solrSimilarPair(task SimilarPairTask, truth []pair, sims []float64, u User, rng *rand.Rand, cl *clock) pair {
	for range task.Values {
		cl.spend(costApplyFilter + costRecordDigest + costRemoveFilter)
	}
	noise := 0.035 * (1.15 - u.Diligence)
	best := truth[0]
	bestEst := -1.0
	for i, p := range truth {
		cl.spend(costCompareDigest)
		est := sims[i] + rng.NormFloat64()*noise
		if est > bestEst {
			bestEst = est
			best = p
		}
	}
	cl.spend(costThink)
	return best
}

// tpfacetSimilarPair builds the CAD View over the four values and uses
// the interactive reorder effect: clicking each value sorts the others by
// Algorithm-2 similarity. The closest pair across clicks is the answer —
// no manual digest arithmetic. (Algorithm 2 can disagree with the task's
// digest metric on near-ties, exactly as the paper observed for users U7
// and U8.)
func tpfacetSimilarPair(v *dataview.View, base dataset.RowSet, task SimilarPairTask, u User, cl *clock) (pair, error) {
	view, _, err := core.Build(v, base, core.Config{
		Pivot:       task.Attr,
		PivotValues: task.Values,
		K:           3,
		Seed:        int64(u.ID),
	})
	if err != nil {
		return pair{}, err
	}
	cl.spend(costBuildCADView + float64(len(view.Rows))*costReadCADRow)

	best := pair{}
	bestDist := -1.0
	for _, val := range task.Values {
		cl.spend(costClick + costObserve)
		_, rowSims, err := core.ReorderRows(view, val)
		if err != nil {
			return pair{}, err
		}
		for _, rs := range rowSims {
			if rs.PivotValue == val {
				continue
			}
			if bestDist < 0 || rs.Distance < bestDist {
				bestDist = rs.Distance
				best = pair{val, rs.PivotValue}
			}
			break // only the nearest neighbour of each click matters
		}
	}
	cl.spend(costThink)
	if best == (pair{}) {
		return pair{}, fmt.Errorf("simuser: reorder produced no neighbours")
	}
	return best, nil
}
