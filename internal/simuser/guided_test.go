package simuser

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"dbexplorer/internal/httpapi"
)

// countCalls counts /suggest hits passing through to the API handler.
func countCalls(s *httpapi.Server, n *atomic.Int64) http.Handler {
	next := s.Handler()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/suggest") {
			n.Add(1)
		}
		next.ServeHTTP(w, r)
	})
}

// TestGuidedDrillSession drives a guided drill-down session end to end
// over real HTTP: an httptest server fronts the v1 API, and the
// simulated user consults /api/v1/{dataset}/suggest between steps.
func TestGuidedDrillSession(t *testing.T) {
	v := mushroomView(t)
	srv := httpapi.NewServer()
	if err := srv.Register("mushrooms", v); err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	ts := httptest.NewServer(countCalls(srv, &calls))
	defer ts.Close()

	sc := &SuggestClient{BaseURL: ts.URL, Dataset: "mushrooms"}
	task := GuidedDrillTask{
		Target: []struct{ Attr, Value string }{
			{Attr: "Odor", Value: "foul"},
			{Attr: "GillColor", Value: "buff"},
		},
		Variant: "guided",
	}
	u := User{ID: 1, Speed: 1, Diligence: 0.9}
	out, err := RunGuidedDrill(context.Background(), v, sc, task, u, 42)
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() == 0 {
		t.Fatal("session never called /suggest")
	}
	if out.Ops == 0 || out.Minutes <= 0 {
		t.Errorf("no work recorded: %+v", out)
	}
	if out.Quality < 0 {
		t.Errorf("retrieval error negative: %v", out.Quality)
	}
	if out.Answer == "(empty)" {
		t.Error("session submitted no selection")
	}
	// The session must be reproducible: same seed, same outcome.
	again, err := RunGuidedDrill(context.Background(), v, sc, task, u, 42)
	if err != nil {
		t.Fatal(err)
	}
	if again.Answer != out.Answer || again.Quality != out.Quality {
		t.Errorf("session not deterministic: %+v vs %+v", out, again)
	}
}

// TestGuidedDrillValidation covers the error paths that need no server.
func TestGuidedDrillValidation(t *testing.T) {
	v := mushroomView(t)
	sc := &SuggestClient{BaseURL: "http://127.0.0.1:0", Dataset: "x"}
	u := User{ID: 1, Speed: 1, Diligence: 0.9}
	if _, err := RunGuidedDrill(context.Background(), v, sc, GuidedDrillTask{}, u, 1); err == nil {
		t.Error("empty target accepted")
	}
	bad := GuidedDrillTask{Target: []struct{ Attr, Value string }{{Attr: "Odor", Value: "no-such"}}}
	if _, err := RunGuidedDrill(context.Background(), v, sc, bad, u, 1); err == nil {
		t.Error("impossible target accepted")
	}
}
