package simuser

import (
	"fmt"

	"dbexplorer/internal/dataview"
	"dbexplorer/internal/stats"
)

// TaskKind identifies one of the study's three task types.
type TaskKind int

const (
	// Classifier is the Simple Classifier task (Figures 2-3).
	Classifier TaskKind = iota
	// SimilarPair is the Most Similar Attribute Value Pair task
	// (Figures 4-5).
	SimilarPair
	// AltCond is the Alternative Search Condition task (Figures 6-7).
	AltCond
)

// String names the task kind.
func (k TaskKind) String() string {
	switch k {
	case Classifier:
		return "Simple Classifier"
	case SimilarPair:
		return "Most Similar Attribute Value Pair"
	case AltCond:
		return "Alternative Search Condition"
	default:
		return fmt.Sprintf("TaskKind(%d)", int(k))
	}
}

// Analysis is the paper's linear mixed model result for one dependent
// variable: interface as fixed effect, user as random effect, compared
// against the null model by likelihood ratio (§6.2).
type Analysis struct {
	LRT stats.LRTResult
	// Effect is the fixed-effect estimate of TPFacet relative to Solr
	// (e.g. minutes saved, F1 gained), with its standard error.
	Effect, EffectSE float64
}

// StudyResult is one task's complete study: 16 outcomes (8 users × 2
// interfaces) plus the quality and time analyses.
type StudyResult struct {
	Kind     TaskKind
	Outcomes []Outcome
	Quality  Analysis
	Time     Analysis
}

// OutcomeFor returns the outcome of one user on one interface, or nil.
func (r *StudyResult) OutcomeFor(userID int, iface Interface) *Outcome {
	for i := range r.Outcomes {
		o := &r.Outcomes[i]
		if o.UserID == userID && o.Iface == iface {
			return o
		}
	}
	return nil
}

// MeanQuality returns the mean quality per interface.
func (r *StudyResult) MeanQuality(iface Interface) float64 {
	return r.mean(iface, func(o *Outcome) float64 { return o.Quality })
}

// MeanMinutes returns the mean completion time per interface.
func (r *StudyResult) MeanMinutes(iface Interface) float64 {
	return r.mean(iface, func(o *Outcome) float64 { return o.Minutes })
}

func (r *StudyResult) mean(iface Interface, f func(*Outcome) float64) float64 {
	var s float64
	n := 0
	for i := range r.Outcomes {
		if r.Outcomes[i].Iface == iface {
			s += f(&r.Outcomes[i])
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

// runTask runs one task variant for one user on one interface.
type runTask func(v *dataview.View, u User, iface Interface, seed int64) (Outcome, error)

// RunStudy executes the full §6.2 protocol for one task kind on the
// Mushroom view: eight users in two groups, a matched task pair (A, B),
// group 1 doing A on TPFacet and B on Solr, group 2 the reverse, then
// the mixed-model analyses.
func RunStudy(v *dataview.View, kind TaskKind, users []User, seed int64) (*StudyResult, error) {
	if len(users) == 0 || len(users)%2 != 0 {
		return nil, fmt.Errorf("simuser: need an even number of users, got %d", len(users))
	}
	taskA, taskB, err := taskPair(kind)
	if err != nil {
		return nil, err
	}
	res := &StudyResult{Kind: kind}
	half := len(users) / 2
	for i, u := range users {
		group1 := i < half
		var aIface, bIface Interface
		if group1 {
			aIface, bIface = TPFacet, Solr
		} else {
			aIface, bIface = Solr, TPFacet
		}
		oa, err := taskA(v, u, aIface, seed)
		if err != nil {
			return nil, fmt.Errorf("simuser: user U%d task A: %w", u.ID, err)
		}
		ob, err := taskB(v, u, bIface, seed)
		if err != nil {
			return nil, fmt.Errorf("simuser: user U%d task B: %w", u.ID, err)
		}
		res.Outcomes = append(res.Outcomes, oa, ob)
	}
	res.Quality, err = analyze(res.Outcomes, func(o *Outcome) float64 { return o.Quality })
	if err != nil {
		return nil, err
	}
	res.Time, err = analyze(res.Outcomes, func(o *Outcome) float64 { return o.Minutes })
	if err != nil {
		return nil, err
	}
	return res, nil
}

// taskPair returns the matched task pair for a kind. The pairs are
// designed on the synthetic Mushroom data to mirror the paper's tasks,
// including the deliberate difficulty asymmetry of the
// alternative-condition pair.
func taskPair(kind TaskKind) (runTask, runTask, error) {
	switch kind {
	case Classifier:
		a := ClassifierTask{ClassAttr: "Bruises", TargetValue: "true", Variant: "Bruises=true"}
		b := ClassifierTask{ClassAttr: "GillSize", TargetValue: "broad", Variant: "GillSize=broad"}
		return wrapClassifier(a), wrapClassifier(b), nil
	case SimilarPair:
		a := SimilarPairTask{Attr: "GillColor", Values: []string{"buff", "white", "brown", "green"}, Variant: "GillColor"}
		b := SimilarPairTask{Attr: "CapColor", Values: []string{"red", "yellow", "brown", "gray"}, Variant: "CapColor"}
		return wrapSimilarPair(a), wrapSimilarPair(b), nil
	case AltCond:
		// Task A is the harder one (the given single value must be
		// replaced by a two-value combination); task B is the paper's
		// sample, solvable with a single alternative value.
		a := AltCondTask{Given: []struct{ Attr, Value string }{
			{"Odor", "foul"},
		}, Variant: "Odor=foul"}
		b := AltCondTask{Given: []struct{ Attr, Value string }{
			{"StalkShape", "enlarged"}, {"SporePrintColor", "chocolate"},
		}, Variant: "StalkShape+SporePrint"}
		return wrapAltCond(a), wrapAltCond(b), nil
	default:
		return nil, nil, fmt.Errorf("simuser: unknown task kind %d", int(kind))
	}
}

func wrapClassifier(t ClassifierTask) runTask {
	return func(v *dataview.View, u User, iface Interface, seed int64) (Outcome, error) {
		return RunClassifier(v, t, u, iface, seed)
	}
}

func wrapSimilarPair(t SimilarPairTask) runTask {
	return func(v *dataview.View, u User, iface Interface, seed int64) (Outcome, error) {
		return RunSimilarPair(v, t, u, iface, seed)
	}
}

func wrapAltCond(t AltCondTask) runTask {
	return func(v *dataview.View, u User, iface Interface, seed int64) (Outcome, error) {
		return RunAltCond(v, t, u, iface, seed)
	}
}

// analyze fits the paper's mixed model: dependent variable ~ interface
// (fixed) + user (random), with a likelihood-ratio test against the
// interface-free null model.
func analyze(outcomes []Outcome, dep func(*Outcome) float64) (Analysis, error) {
	var y []float64
	var xFull, xNull [][]float64
	var groups []int
	for i := range outcomes {
		o := &outcomes[i]
		treat := 0.0
		if o.Iface == TPFacet {
			treat = 1
		}
		y = append(y, dep(o))
		xFull = append(xFull, []float64{1, treat})
		xNull = append(xNull, []float64{1})
		groups = append(groups, o.UserID)
	}
	lrt, err := stats.LikelihoodRatioTest(y, xFull, xNull, groups)
	if err != nil {
		return Analysis{}, err
	}
	return Analysis{
		LRT:      lrt,
		Effect:   lrt.Full.Beta[1],
		EffectSE: lrt.Full.SE[1],
	}, nil
}
