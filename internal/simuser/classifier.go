package simuser

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"dbexplorer/internal/core"
	"dbexplorer/internal/dataset"
	"dbexplorer/internal/dataview"
	"dbexplorer/internal/facet"
	"dbexplorer/internal/stats"
)

// ClassifierTask is §6.2.1: build a simple classifier — at most two
// attribute values maximizing F1 for the target class.
type ClassifierTask struct {
	ClassAttr   string
	TargetValue string
	// Variant labels the matched-pair task for reporting.
	Variant string
}

// selectionRows evaluates a selection with faceted semantics over base.
func selectionRows(v *dataview.View, base dataset.RowSet, sel selection) dataset.RowSet {
	byAttr := map[string][]string{}
	for _, r := range sel {
		byAttr[r.Attr] = append(byAttr[r.Attr], r.Value)
	}
	rows := base
	for attr, values := range byAttr {
		col, err := v.Column(attr)
		if err != nil {
			return nil
		}
		want := map[int]bool{}
		for _, val := range values {
			want[col.CodeOf(val)] = true
		}
		rows = rows.Filter(func(r int) bool { return want[col.Code(r)] })
	}
	return rows
}

// classifierF1 computes the true F1 of a selection against the target
// class over base.
func classifierF1(v *dataview.View, base dataset.RowSet, sel selection, classCol *dataview.Column, targetCode int) float64 {
	predicted := selectionRows(v, base, sel)
	tp, fp := 0, 0
	for _, r := range predicted {
		if classCol.Code(r) == targetCode {
			tp++
		} else {
			fp++
		}
	}
	targetTotal := 0
	for _, r := range base {
		if classCol.Code(r) == targetCode {
			targetTotal++
		}
	}
	return stats.F1Score(tp, fp, targetTotal-tp)
}

// RunClassifier executes the classifier task for one user on one
// interface.
func RunClassifier(v *dataview.View, task ClassifierTask, u User, iface Interface, seed int64) (Outcome, error) {
	if err := checkUser(u); err != nil {
		return Outcome{}, err
	}
	classCol, err := v.Column(task.ClassAttr)
	if err != nil {
		return Outcome{}, err
	}
	targetCode := classCol.CodeOf(task.TargetValue)
	if targetCode < 0 {
		return Outcome{}, fmt.Errorf("simuser: class %q has no value %q", task.ClassAttr, task.TargetValue)
	}
	rng := rand.New(rand.NewSource(seed ^ int64(u.ID)<<8 ^ int64(iface)))
	base := dataset.AllRows(v.Table().NumRows())
	cl := &clock{speed: u.Speed, rng: rng}

	var candidates []valueRef
	var estNoise float64
	switch iface {
	case Solr:
		candidates = solrClassifierCandidates(v, task, base, u, rng, cl)
		estNoise = 0.05 * (1.1 - u.Diligence)
	case TPFacet:
		candidates, err = tpfacetClassifierCandidates(v, task, base, u, cl)
		if err != nil {
			return Outcome{}, err
		}
		estNoise = 0.02 * (1.1 - u.Diligence)
	}

	trueF1 := func(sel selection) float64 {
		return classifierF1(v, base, sel, classCol, targetCode)
	}

	// Phase 1: single-value trials. Each trial is an apply / read the
	// class counts / remove cycle on the live interface.
	nSingle := len(candidates)
	budget := map[Interface]int{
		Solr:    int(math.Round(12 + 16*u.Diligence)),
		TPFacet: int(math.Round(3 + 3*u.Diligence)),
	}[iface]
	if nSingle > budget {
		nSingle = budget
	}
	// Hit-and-trial cycles on the baseline need a full decision step
	// each time (which value next?); reading contrasts off the CAD View
	// halves that.
	trialThink := costThink
	if iface == TPFacet {
		trialThink = costThink * 0.5
	}
	type scored struct {
		sel selection
		est float64
	}
	var tried []scored
	for _, c := range candidates[:nSingle] {
		cl.spend(costApplyFilter + costReadCount + costRemoveFilter + trialThink)
		sel := selection{c}
		tried = append(tried, scored{sel, trueF1(sel) + rng.NormFloat64()*estNoise})
	}
	sort.Slice(tried, func(i, j int) bool { return tried[i].est > tried[j].est })

	// Phase 2: pair trials combining the best singles.
	nTop := 3
	if nTop > len(tried) {
		nTop = len(tried)
	}
	nPair := map[Interface]int{
		Solr:    int(math.Round(4 + 8*u.Diligence)),
		TPFacet: int(math.Round(2 + 2*u.Diligence)),
	}[iface]
	var pairTried []scored
	for i := 0; i < nTop && len(pairTried) < nPair; i++ {
		for j := 0; j < len(tried) && len(pairTried) < nPair; j++ {
			if j == i {
				continue
			}
			a, b := tried[i].sel[0], tried[j].sel[0]
			if a == b {
				continue
			}
			cl.spend(2*costApplyFilter + costReadCount + 2*costRemoveFilter + trialThink)
			sel := selection{a, b}
			pairTried = append(pairTried, scored{sel, trueF1(sel) + rng.NormFloat64()*estNoise})
		}
	}
	tried = append(tried, pairTried...)
	sort.Slice(tried, func(i, j int) bool { return tried[i].est > tried[j].est })

	cl.spend(2 * costThink) // final decision
	if len(tried) == 0 {
		return Outcome{}, fmt.Errorf("simuser: no classifier candidates tried")
	}
	best := tried[0].sel
	return Outcome{
		UserID:  u.ID,
		Iface:   iface,
		Variant: task.Variant,
		Quality: trueF1(best),
		Minutes: cl.minutes(),
		Ops:     cl.ops,
		Answer:  best.String(),
	}, nil
}

// solrClassifierCandidates orders the value pool the only way the
// baseline digest affords: by displayed tuple count, with per-user
// perceptual noise. Discriminativeness is invisible until a value is
// actually tried.
func solrClassifierCandidates(v *dataview.View, task ClassifierTask, base dataset.RowSet, u User, rng *rand.Rand, cl *clock) []valueRef {
	d := facet.Summarize(v, base, true)
	// Scanning the whole digest costs real time.
	for _, a := range d.Attrs {
		n := len(a.Values)
		if n > 8 {
			n = 8
		}
		cl.spend(float64(n) * costScanValue)
	}
	pool := allValues(v, map[string]bool{task.ClassAttr: true})
	noise := 0.5 * (1.3 - u.Diligence)
	type ranked struct {
		ref   valueRef
		score float64
	}
	var rs []ranked
	for _, ref := range pool {
		count := d.Count(ref.Attr, ref.Value)
		if count == 0 {
			continue
		}
		rs = append(rs, ranked{ref, float64(count) * math.Exp(rng.NormFloat64()*noise)})
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].score > rs[j].score })
	out := make([]valueRef, len(rs))
	for i, r := range rs {
		out[i] = r.ref
	}
	return out
}

// tpfacetClassifierCandidates builds the real CAD View pivoted on the
// class attribute and reads candidates off it: values displayed in the
// target row's IUnit labels but not in the other rows' — exactly the
// contrast the interface renders.
func tpfacetClassifierCandidates(v *dataview.View, task ClassifierTask, base dataset.RowSet, u User, cl *clock) ([]valueRef, error) {
	view, _, err := core.Build(v, base, core.Config{
		Pivot: task.ClassAttr,
		K:     3,
		Seed:  int64(u.ID),
	})
	if err != nil {
		return nil, err
	}
	cl.spend(costBuildCADView + float64(len(view.Rows))*costReadCADRow)

	displayed := func(row *core.PivotRow) map[valueRef]int {
		counts := map[valueRef]int{}
		if row == nil {
			return counts
		}
		for _, iu := range row.IUnits {
			for _, l := range iu.Labels {
				for gi, g := range l.Groups {
					for _, val := range g.Values {
						// Earlier groups are more prominent.
						counts[valueRef{l.Attr, val}] += iu.Size / (gi + 1)
					}
				}
			}
		}
		return counts
	}
	target := displayed(view.Row(task.TargetValue))
	var others map[valueRef]int
	for _, row := range view.Rows {
		if row.Value == task.TargetValue {
			continue
		}
		others = displayed(row)
		break
	}
	type ranked struct {
		ref   valueRef
		score float64
	}
	var rs []ranked
	for ref, w := range target {
		if _, shared := others[ref]; shared {
			continue
		}
		rs = append(rs, ranked{ref, float64(w)})
	}
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].score != rs[j].score {
			return rs[i].score > rs[j].score
		}
		return rs[i].ref.String() < rs[j].ref.String()
	})
	out := make([]valueRef, len(rs))
	for i, r := range rs {
		out[i] = r.ref
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("simuser: CAD view showed no contrasting values for %s", task.ClassAttr)
	}
	return out, nil
}
