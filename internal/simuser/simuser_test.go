package simuser

import (
	"sync"
	"testing"

	"dbexplorer/internal/datagen"
	"dbexplorer/internal/dataset"
	"dbexplorer/internal/dataview"
)

// mushroomView is shared across tests: generating 8124 rows once keeps
// the suite fast.
var (
	mvOnce sync.Once
	mv     *dataview.View
)

func mushroomView(t *testing.T) *dataview.View {
	t.Helper()
	mvOnce.Do(func() {
		tbl := datagen.MushroomN(4000, 77)
		v, err := dataview.New(tbl, dataview.Options{})
		if err != nil {
			panic(err)
		}
		mv = v
	})
	return mv
}

func TestInterfaceString(t *testing.T) {
	if Solr.String() != "Solr" || TPFacet.String() != "TPFacet" {
		t.Error("interface names")
	}
	if Classifier.String() == "" || SimilarPair.String() == "" || AltCond.String() == "" || TaskKind(9).String() == "" {
		t.Error("task kind names")
	}
}

func TestNewUsers(t *testing.T) {
	users := NewUsers(8, 1)
	if len(users) != 8 {
		t.Fatalf("users = %d", len(users))
	}
	for i, u := range users {
		if u.ID != i+1 {
			t.Errorf("user %d has ID %d", i, u.ID)
		}
		if err := checkUser(u); err != nil {
			t.Errorf("user %d invalid: %v", i, err)
		}
	}
	again := NewUsers(8, 1)
	for i := range users {
		if users[i] != again[i] {
			t.Error("NewUsers not deterministic")
		}
	}
}

func TestSelectionRows(t *testing.T) {
	v := mushroomView(t)
	base := dataset.AllRows(v.Table().NumRows())
	// Same attribute ORs.
	or := selectionRows(v, base, selection{
		{Attr: "Odor", Value: "almond"},
		{Attr: "Odor", Value: "anise"},
	})
	a := selectionRows(v, base, selection{{Attr: "Odor", Value: "almond"}})
	b := selectionRows(v, base, selection{{Attr: "Odor", Value: "anise"}})
	if len(or) != len(a)+len(b) {
		t.Errorf("OR semantics: %d != %d + %d", len(or), len(a), len(b))
	}
	// Different attributes AND.
	and := selectionRows(v, base, selection{
		{Attr: "Odor", Value: "foul"},
		{Attr: "Bruises", Value: "false"},
	})
	f := selectionRows(v, base, selection{{Attr: "Odor", Value: "foul"}})
	if len(and) > len(f) {
		t.Errorf("AND semantics: %d > %d", len(and), len(f))
	}
	if len(selectionRows(v, base, nil)) != len(base) {
		t.Error("empty selection should keep everything")
	}
}

func TestRunClassifierBothInterfaces(t *testing.T) {
	v := mushroomView(t)
	task := ClassifierTask{ClassAttr: "Bruises", TargetValue: "true", Variant: "A"}
	u := User{ID: 1, Speed: 1, Diligence: 0.8}
	for _, iface := range []Interface{Solr, TPFacet} {
		o, err := RunClassifier(v, task, u, iface, 5)
		if err != nil {
			t.Fatalf("%v: %v", iface, err)
		}
		if o.Quality < 0 || o.Quality > 1 {
			t.Errorf("%v: F1 = %g", iface, o.Quality)
		}
		if o.Minutes <= 0 || o.Ops == 0 || o.Answer == "" {
			t.Errorf("%v: outcome incomplete: %+v", iface, o)
		}
		if o.Quality < 0.3 {
			t.Errorf("%v: implausibly bad classifier F1 %g (%s)", iface, o.Quality, o.Answer)
		}
	}
}

func TestRunClassifierErrors(t *testing.T) {
	v := mushroomView(t)
	u := User{ID: 1, Speed: 1, Diligence: 0.8}
	if _, err := RunClassifier(v, ClassifierTask{ClassAttr: "Nope", TargetValue: "x"}, u, Solr, 1); err == nil {
		t.Error("unknown class attr: want error")
	}
	if _, err := RunClassifier(v, ClassifierTask{ClassAttr: "Bruises", TargetValue: "nope"}, u, Solr, 1); err == nil {
		t.Error("unknown target value: want error")
	}
	if _, err := RunClassifier(v, ClassifierTask{ClassAttr: "Bruises", TargetValue: "true"}, User{}, Solr, 1); err == nil {
		t.Error("invalid user: want error")
	}
}

func TestRunSimilarPairBothInterfaces(t *testing.T) {
	v := mushroomView(t)
	task := SimilarPairTask{Attr: "GillColor", Values: []string{"buff", "white", "brown", "green"}, Variant: "A"}
	u := User{ID: 2, Speed: 1, Diligence: 0.9}
	for _, iface := range []Interface{Solr, TPFacet} {
		o, err := RunSimilarPair(v, task, u, iface, 5)
		if err != nil {
			t.Fatalf("%v: %v", iface, err)
		}
		if o.Quality < 1 || o.Quality > 6 {
			t.Errorf("%v: rank = %g", iface, o.Quality)
		}
		if o.Quality > 2 {
			t.Errorf("%v: planted brown/white pair missed badly: rank %g answer %s", iface, o.Quality, o.Answer)
		}
	}
}

func TestRunSimilarPairErrors(t *testing.T) {
	v := mushroomView(t)
	u := User{ID: 1, Speed: 1, Diligence: 0.8}
	if _, err := RunSimilarPair(v, SimilarPairTask{Attr: "GillColor", Values: []string{"a", "b"}}, u, Solr, 1); err == nil {
		t.Error("wrong value count: want error")
	}
	if _, err := RunSimilarPair(v, SimilarPairTask{Attr: "GillColor", Values: []string{"buff", "white", "brown", "nope"}}, u, Solr, 1); err == nil {
		t.Error("unknown value: want error")
	}
	if _, err := RunSimilarPair(v, SimilarPairTask{Attr: "Nope", Values: []string{"a", "b", "c", "d"}}, u, Solr, 1); err == nil {
		t.Error("unknown attribute: want error")
	}
}

func TestRunAltCondBothInterfaces(t *testing.T) {
	v := mushroomView(t)
	task := AltCondTask{Given: []struct{ Attr, Value string }{
		{"StalkShape", "enlarged"}, {"SporePrintColor", "chocolate"},
	}, Variant: "B"}
	u := User{ID: 3, Speed: 1, Diligence: 0.9}
	for _, iface := range []Interface{Solr, TPFacet} {
		o, err := RunAltCond(v, task, u, iface, 5)
		if err != nil {
			t.Fatalf("%v: %v", iface, err)
		}
		if o.Quality < 0 {
			t.Errorf("%v: negative retrieval error %g", iface, o.Quality)
		}
		// The answer must not reuse given values.
		if o.Answer == "StalkShape=enlarged" || o.Answer == "SporePrintColor=chocolate" {
			t.Errorf("%v: reused a given value: %s", iface, o.Answer)
		}
	}
}

func TestRunAltCondErrors(t *testing.T) {
	v := mushroomView(t)
	u := User{ID: 1, Speed: 1, Diligence: 0.8}
	if _, err := RunAltCond(v, AltCondTask{}, u, Solr, 1); err == nil {
		t.Error("no given conditions: want error")
	}
	impossible := AltCondTask{Given: []struct{ Attr, Value string }{
		{"Odor", "almond"}, {"Odor", "foul"},
	}}
	// almond and foul never co-occur with AND semantics... they are the
	// same attribute so they OR; use cross-attribute contradiction.
	_ = impossible
	contradiction := AltCondTask{Given: []struct{ Attr, Value string }{
		{"Odor", "almond"}, {"SporePrintColor", "chocolate"},
	}}
	if _, err := RunAltCond(v, contradiction, u, Solr, 1); err == nil {
		t.Log("contradictory condition unexpectedly matched rows (acceptable if data allows)")
	}
}

func TestRunStudyProtocol(t *testing.T) {
	v := mushroomView(t)
	users := NewUsers(8, 3)
	res, err := RunStudy(v, Classifier, users, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != 16 {
		t.Fatalf("outcomes = %d, want 16", len(res.Outcomes))
	}
	// Every user appears once per interface.
	for _, u := range users {
		for _, iface := range []Interface{Solr, TPFacet} {
			if res.OutcomeFor(u.ID, iface) == nil {
				t.Errorf("missing outcome for U%d on %v", u.ID, iface)
			}
		}
	}
	// Counterbalancing: group 1 does task A on TPFacet, group 2 on Solr.
	o1 := res.OutcomeFor(1, TPFacet)
	o5 := res.OutcomeFor(5, Solr)
	if o1.Variant != o5.Variant {
		t.Errorf("counterbalancing broken: U1/TPFacet did %q, U5/Solr did %q", o1.Variant, o5.Variant)
	}
	if res.OutcomeFor(99, Solr) != nil {
		t.Error("lookup of unknown user should be nil")
	}
	// Analyses are populated.
	if res.Quality.LRT.DF != 1 || res.Time.LRT.DF != 1 {
		t.Error("analysis df wrong")
	}
	if res.MeanMinutes(Solr) <= 0 || res.MeanMinutes(TPFacet) <= 0 {
		t.Error("mean minutes not positive")
	}
}

func TestRunStudyHeadlineShapes(t *testing.T) {
	// The paper's headline: TPFacet is substantially faster on every
	// task and at least as accurate. These shapes must emerge from the
	// interface asymmetry.
	v := mushroomView(t)
	users := NewUsers(8, 3)

	cls, err := RunStudy(v, Classifier, users, 11)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := cls.MeanMinutes(Solr) / cls.MeanMinutes(TPFacet); ratio < 1.8 {
		t.Errorf("classifier speedup = %.2fx, want >= 1.8x (Solr %.1f min, TPFacet %.1f min)",
			ratio, cls.MeanMinutes(Solr), cls.MeanMinutes(TPFacet))
	}
	if cls.MeanQuality(TPFacet) < cls.MeanQuality(Solr) {
		t.Errorf("TPFacet F1 %.3f below Solr %.3f", cls.MeanQuality(TPFacet), cls.MeanQuality(Solr))
	}

	sim, err := RunStudy(v, SimilarPair, users, 11)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := sim.MeanMinutes(Solr) / sim.MeanMinutes(TPFacet); ratio < 2 {
		t.Errorf("similar-pair speedup = %.2fx, want >= 2x", ratio)
	}

	alt, err := RunStudy(v, AltCond, users, 11)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := alt.MeanMinutes(Solr) / alt.MeanMinutes(TPFacet); ratio < 1.3 {
		t.Errorf("alt-condition speedup = %.2fx, want >= 1.3x", ratio)
	}
	if alt.MeanQuality(TPFacet) > alt.MeanQuality(Solr) {
		t.Errorf("TPFacet retrieval error %.3f above Solr %.3f",
			alt.MeanQuality(TPFacet), alt.MeanQuality(Solr))
	}
}

func TestRunStudyErrors(t *testing.T) {
	v := mushroomView(t)
	if _, err := RunStudy(v, Classifier, NewUsers(3, 1), 1); err == nil {
		t.Error("odd user count: want error")
	}
	if _, err := RunStudy(v, Classifier, nil, 1); err == nil {
		t.Error("no users: want error")
	}
	if _, err := RunStudy(v, TaskKind(9), NewUsers(2, 1), 1); err == nil {
		t.Error("unknown task kind: want error")
	}
}

func TestRunStudyDeterministic(t *testing.T) {
	v := mushroomView(t)
	users := NewUsers(8, 3)
	r1, err := RunStudy(v, SimilarPair, users, 4)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunStudy(v, SimilarPair, users, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Outcomes {
		if r1.Outcomes[i] != r2.Outcomes[i] {
			t.Fatalf("outcome %d differs between same-seed runs", i)
		}
	}
}
