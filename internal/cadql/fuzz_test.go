package cadql

import (
	"strings"
	"testing"
)

// FuzzParse asserts the parser never panics and that accepted statements
// are well-formed enough to re-parse basic invariants.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT * FROM t",
		"SELECT a, b FROM t WHERE x = 1 AND y BETWEEN 2 AND 3 ORDER BY a DESC LIMIT 5",
		"CREATE CADVIEW v AS SET pivot = Make SELECT Price FROM cars LIMIT COLUMNS 5 IUNITS 3",
		"HIGHLIGHT SIMILAR IUNITS IN v WHERE SIMILARITY(Chevrolet, 3) > 3.5",
		"REORDER ROWS IN v ORDER BY SIMILARITY('Land Rover') DESC",
		"SHOW TABLES",
		"DESCRIBE t",
		"DROP CADVIEW v",
		"EXPLAIN CREATE CADVIEW v AS SET pivot = p SELECT FROM t",
		"SELECT * FROM a, b WHERE Make IN (x, 'y z') OR NOT (q != 10K)",
		"select * from t where a <> -1.5M;",
		"'", "((", "SELECT", "= = =", "WHERE WHERE", "10K10K",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		stmt, err := Parse(input)
		if err != nil {
			return // rejection is fine; panics are not
		}
		switch st := stmt.(type) {
		case *SelectStmt:
			if len(st.Tables) == 0 {
				t.Errorf("accepted SELECT without tables: %q", input)
			}
			if st.Limit < 0 {
				t.Errorf("negative limit from %q", input)
			}
		case *CreateCADViewStmt:
			if st.Name == "" || st.Pivot == "" || len(st.Tables) == 0 {
				t.Errorf("accepted incomplete CREATE CADVIEW: %q", input)
			}
		case *HighlightStmt:
			if st.Rank < 1 {
				t.Errorf("accepted non-positive rank: %q", input)
			}
		}
	})
}

// FuzzLex asserts the lexer terminates and never panics, and that token
// text always comes from the input (no fabricated content) except for
// normalized operators.
func FuzzLex(f *testing.F) {
	for _, s := range []string{"a = 'b c' 10K <= >= != <>", "'", "\x00\xff", "1.2.3.4"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		toks, err := lex(input)
		if err != nil {
			return
		}
		if len(toks) == 0 || toks[len(toks)-1].kind != tokEOF {
			t.Errorf("lex(%q): missing EOF token", input)
		}
		for _, tok := range toks[:len(toks)-1] {
			if tok.kind == tokIdent && !strings.Contains(input, tok.text) {
				t.Errorf("lex(%q): fabricated identifier %q", input, tok.text)
			}
		}
	})
}
