package cadql

import (
	"strings"
	"testing"

	"dbexplorer/internal/expr"
)

func parseSelect(t *testing.T, q string) *SelectStmt {
	t.Helper()
	s, err := Parse(q)
	if err != nil {
		t.Fatalf("Parse(%q): %v", q, err)
	}
	sel, ok := s.(*SelectStmt)
	if !ok {
		t.Fatalf("Parse(%q) = %T, want *SelectStmt", q, s)
	}
	return sel
}

func TestParseSelectStar(t *testing.T) {
	s := parseSelect(t, "SELECT * FROM D")
	if s.Table() != "D" || s.Columns != nil || s.Where != nil || s.Limit != 0 {
		t.Errorf("got %+v", s)
	}
}

func TestParseSelectColumnsAndLimit(t *testing.T) {
	s := parseSelect(t, "SELECT Make, Model FROM cars LIMIT 10;")
	if len(s.Columns) != 2 || s.Columns[0] != "Make" || s.Columns[1] != "Model" {
		t.Errorf("columns = %v", s.Columns)
	}
	if s.Limit != 10 {
		t.Errorf("limit = %d", s.Limit)
	}
}

func TestParseMarysQuery(t *testing.T) {
	// The paper's Example 1 initial query.
	q := `SELECT * FROM D WHERE Mileage BETWEEN 10K AND 30K AND Transmission = Automatic AND BodyType = SUV`
	s := parseSelect(t, q)
	and, ok := s.Where.(*expr.And)
	if !ok {
		t.Fatalf("where = %T", s.Where)
	}
	if len(and.Kids) != 3 {
		t.Fatalf("AND kids = %d", len(and.Kids))
	}
	between, ok := and.Kids[0].(*expr.Between)
	if !ok || between.Lo != 10000 || between.Hi != 30000 {
		t.Errorf("K suffix not applied: %+v", and.Kids[0])
	}
	cmp, ok := and.Kids[1].(*expr.Cmp)
	if !ok || cmp.Attr != "Transmission" || cmp.Str != "Automatic" {
		t.Errorf("bare-word literal: %+v", and.Kids[1])
	}
}

func TestParseWherePrecedenceAndParens(t *testing.T) {
	s := parseSelect(t, "SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3")
	or, ok := s.Where.(*expr.Or)
	if !ok {
		t.Fatalf("top = %T, want Or (AND binds tighter)", s.Where)
	}
	if len(or.Kids) != 2 {
		t.Fatalf("or kids = %d", len(or.Kids))
	}
	if _, ok := or.Kids[1].(*expr.And); !ok {
		t.Errorf("right kid = %T, want And", or.Kids[1])
	}

	s = parseSelect(t, "SELECT * FROM t WHERE (a = 1 OR b = 2) AND NOT c = 3")
	and, ok := s.Where.(*expr.And)
	if !ok {
		t.Fatalf("top = %T, want And", s.Where)
	}
	if _, ok := and.Kids[0].(*expr.Or); !ok {
		t.Errorf("paren group lost: %T", and.Kids[0])
	}
	if _, ok := and.Kids[1].(*expr.Not); !ok {
		t.Errorf("NOT lost: %T", and.Kids[1])
	}
}

func TestParseInAndOperators(t *testing.T) {
	s := parseSelect(t, "SELECT * FROM t WHERE Make IN (Jeep, 'Land Rover') AND Price >= 20.5K AND Year != 2011")
	and := s.Where.(*expr.And)
	in, ok := and.Kids[0].(*expr.In)
	if !ok || len(in.Values) != 2 || in.Values[1] != "Land Rover" {
		t.Errorf("IN parse: %+v", and.Kids[0])
	}
	ge := and.Kids[1].(*expr.Cmp)
	if ge.Op != expr.Ge || ge.Num != 20500 {
		t.Errorf("decimal K literal: %+v", ge)
	}
	ne := and.Kids[2].(*expr.Cmp)
	if ne.Op != expr.Ne || ne.Num != 2011 {
		t.Errorf("!= literal: %+v", ne)
	}
}

func TestParseAllCmpOps(t *testing.T) {
	for _, tc := range []struct {
		src string
		op  expr.CmpOp
	}{
		{"=", expr.Eq}, {"!=", expr.Ne}, {"<>", expr.Ne},
		{"<", expr.Lt}, {"<=", expr.Le}, {">", expr.Gt}, {">=", expr.Ge},
	} {
		s := parseSelect(t, "SELECT * FROM t WHERE x "+tc.src+" 5")
		cmp := s.Where.(*expr.Cmp)
		if cmp.Op != tc.op {
			t.Errorf("%q parsed as %v", tc.src, cmp.Op)
		}
	}
}

func TestParseCreateCADView(t *testing.T) {
	// The paper's CompareMakes example, §2.1.2.
	q := `CREATE CADVIEW CompareMakes AS
	SET pivot = Make
	SELECT Price
	FROM UsedCars
	WHERE Mileage BETWEEN 10K AND 30K AND
	Transmission = Automatic AND BodyType = SUV AND
	(Make = Jeep OR Make = Toyota OR Make = Honda OR
	Make = Ford OR Make = Chevrolet)
	LIMIT COLUMNS 5 IUNITS 3`
	s, err := Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	c, ok := s.(*CreateCADViewStmt)
	if !ok {
		t.Fatalf("got %T", s)
	}
	if c.Name != "CompareMakes" || c.Pivot != "Make" || c.Tables[0] != "UsedCars" {
		t.Errorf("header: %+v", c)
	}
	if len(c.Compare) != 1 || c.Compare[0] != "Price" {
		t.Errorf("compare attrs = %v", c.Compare)
	}
	if c.MaxCompare != 5 || c.IUnits != 3 {
		t.Errorf("limits: columns=%d iunits=%d", c.MaxCompare, c.IUnits)
	}
	if c.Where == nil {
		t.Error("where missing")
	}
}

func TestParseCreateCADViewOrderByAndStar(t *testing.T) {
	q := `CREATE CADVIEW v AS SET pivot = Make SELECT * FROM t ORDER BY Price ASC, Mileage DESC`
	s, err := Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	c := s.(*CreateCADViewStmt)
	if len(c.Compare) != 0 {
		t.Errorf("SELECT * should leave compare empty: %v", c.Compare)
	}
	if len(c.OrderBy) != 2 || c.OrderBy[0] != (OrderKey{"Price", false}) || c.OrderBy[1] != (OrderKey{"Mileage", true}) {
		t.Errorf("order by = %+v", c.OrderBy)
	}
	// SELECT directly followed by FROM also means "all automatic".
	s, err = Parse(`CREATE CADVIEW v AS SET pivot = Make SELECT FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if c := s.(*CreateCADViewStmt); len(c.Compare) != 0 {
		t.Errorf("compare = %v", c.Compare)
	}
}

func TestParseHighlight(t *testing.T) {
	// The paper's highlight example.
	q := `HIGHLIGHT SIMILAR IUNITS IN CompareMakes WHERE SIMILARITY(Chevrolet, 3) > 3.5`
	s, err := Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	h := s.(*HighlightStmt)
	if h.View != "CompareMakes" || h.PivotValue != "Chevrolet" || h.Rank != 3 || h.Threshold != 3.5 {
		t.Errorf("got %+v", h)
	}
	// Quoted pivot values carry spaces.
	s, err = Parse(`HIGHLIGHT SIMILAR IUNITS IN v WHERE SIMILARITY('Land Rover', 1) > 2`)
	if err != nil {
		t.Fatal(err)
	}
	if s.(*HighlightStmt).PivotValue != "Land Rover" {
		t.Errorf("quoted pivot value: %+v", s)
	}
}

func TestParseReorder(t *testing.T) {
	q := `REORDER ROWS IN CompareMakes ORDER BY SIMILARITY(Chevrolet) DESC`
	s, err := Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	r := s.(*ReorderStmt)
	if r.View != "CompareMakes" || r.PivotValue != "Chevrolet" || !r.Desc {
		t.Errorf("got %+v", r)
	}
	s, err = Parse(`REORDER ROWS IN v ORDER BY SIMILARITY(x) ASC`)
	if err != nil {
		t.Fatal(err)
	}
	if s.(*ReorderStmt).Desc {
		t.Error("ASC not honored")
	}
	// Direction defaults to DESC.
	s, err = Parse(`REORDER ROWS IN v ORDER BY SIMILARITY(x)`)
	if err != nil {
		t.Fatal(err)
	}
	if !s.(*ReorderStmt).Desc {
		t.Error("default direction should be DESC")
	}
}

func TestParseMultiTableFrom(t *testing.T) {
	s := parseSelect(t, "SELECT * FROM Listings, Makers WHERE Country = USA")
	if len(s.Tables) != 2 || s.Tables[0] != "Listings" || s.Tables[1] != "Makers" {
		t.Errorf("tables = %v", s.Tables)
	}
	if s.Table() != "Listings" {
		t.Errorf("Table() = %q", s.Table())
	}
	c, err := Parse("CREATE CADVIEW v AS SET pivot = Make SELECT * FROM a, b, c")
	if err != nil {
		t.Fatal(err)
	}
	if got := c.(*CreateCADViewStmt).Tables; len(got) != 3 || got[2] != "c" {
		t.Errorf("cadview tables = %v", got)
	}
	if (&SelectStmt{}).Table() != "" {
		t.Error("empty Table() accessor")
	}
	if _, err := Parse("SELECT * FROM a,"); err == nil {
		t.Error("trailing comma: want error")
	}
}

func TestParseShowDescribeDrop(t *testing.T) {
	s, err := Parse("SHOW TABLES")
	if err != nil {
		t.Fatal(err)
	}
	if s.(*ShowStmt).What != "TABLES" {
		t.Errorf("got %+v", s)
	}
	s, err = Parse("show cadviews;")
	if err != nil {
		t.Fatal(err)
	}
	if s.(*ShowStmt).What != "CADVIEWS" {
		t.Errorf("got %+v", s)
	}
	s, err = Parse("DESCRIBE UsedCars")
	if err != nil {
		t.Fatal(err)
	}
	if s.(*DescribeStmt).Table != "UsedCars" {
		t.Errorf("got %+v", s)
	}
	s, err = Parse("DESC UsedCars")
	if err != nil {
		t.Fatal(err)
	}
	if s.(*DescribeStmt).Table != "UsedCars" {
		t.Errorf("DESC alias: got %+v", s)
	}
	s, err = Parse("DROP CADVIEW CompareMakes")
	if err != nil {
		t.Fatal(err)
	}
	if s.(*DropStmt).View != "CompareMakes" {
		t.Errorf("got %+v", s)
	}
	for _, bad := range []string{"SHOW", "SHOW NOTHING", "DESCRIBE", "DROP CADVIEW", "DROP TABLE t"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q): want error", bad)
		}
	}
}

func TestParseSelectOrderBy(t *testing.T) {
	s := parseSelect(t, "SELECT * FROM t WHERE a = 1 ORDER BY Price DESC, Make LIMIT 3")
	if len(s.OrderBy) != 2 {
		t.Fatalf("order by = %+v", s.OrderBy)
	}
	if s.OrderBy[0] != (OrderKey{"Price", true}) || s.OrderBy[1] != (OrderKey{"Make", false}) {
		t.Errorf("order keys = %+v", s.OrderBy)
	}
	if s.Limit != 3 {
		t.Errorf("limit = %d", s.Limit)
	}
	if _, err := Parse("SELECT * FROM t ORDER Price"); err == nil {
		t.Error("ORDER without BY: want error")
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	if _, err := Parse("select * from t where a = 1 and b between 2 and 3"); err != nil {
		t.Errorf("lowercase keywords: %v", err)
	}
	if _, err := Parse("create cadview v as set pivot = Make select Price from t iunits 4"); err != nil {
		t.Errorf("lowercase cadview: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"DROP TABLE t",
		"SELECT",
		"SELECT * FROM",
		"SELECT * FROM t WHERE",
		"SELECT * FROM t WHERE a",
		"SELECT * FROM t WHERE a = ",
		"SELECT * FROM t WHERE a BETWEEN x AND 3",
		"SELECT * FROM t WHERE a BETWEEN 1, 3",
		"SELECT * FROM t WHERE a IN ()",
		"SELECT * FROM t WHERE a IN (1,",
		"SELECT * FROM t WHERE (a = 1",
		"SELECT * FROM t LIMIT 0",
		"SELECT * FROM t LIMIT 2.5",
		"SELECT FROM, x FROM t",
		"SELECT * FROM t trailing",
		"SELECT * FROM t WHERE a = 'unterminated",
		"SELECT * FROM t WHERE a ! b",
		"SELECT * FROM t WHERE a @ b",
		"CREATE VIEW v AS SELECT * FROM t",
		"CREATE CADVIEW v SELECT * FROM t",
		"CREATE CADVIEW v AS SET pivot Make SELECT * FROM t",
		"CREATE CADVIEW v AS SET pivot = Make SELECT * FROM t LIMIT COLUMNS 0",
		"CREATE CADVIEW v AS SET pivot = Make SELECT * FROM t LIMIT 5",
		"CREATE CADVIEW v AS SET pivot = Make SELECT * FROM t IUNITS -1",
		"CREATE CADVIEW v AS SET pivot = Make SELECT * FROM t ORDER BY",
		"HIGHLIGHT SIMILAR IUNITS IN v WHERE SIMILARITY(x) > 2",
		"HIGHLIGHT SIMILAR IUNITS IN v WHERE SIMILARITY(x, 0) > 2",
		"HIGHLIGHT SIMILAR IUNITS IN v WHERE SIMILARITY(x, 1) < 2",
		"HIGHLIGHT SIMILAR IUNITS IN v WHERE SIMILARITY(x, 1)",
		"REORDER ROWS IN v",
		"REORDER ROWS IN v ORDER BY SIMILARITY()",
		"REORDER IN v ORDER BY SIMILARITY(x)",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q): want error", q)
		}
	}
}

func TestParseNegativeNumbers(t *testing.T) {
	s := parseSelect(t, "SELECT * FROM t WHERE a > -5 AND b BETWEEN -10 AND -1")
	and := s.Where.(*expr.And)
	if cmp := and.Kids[0].(*expr.Cmp); cmp.Num != -5 {
		t.Errorf("negative literal: %+v", cmp)
	}
	if b := and.Kids[1].(*expr.Between); b.Lo != -10 || b.Hi != -1 {
		t.Errorf("negative between: %+v", b)
	}
}

func TestParseDigitLedValues(t *testing.T) {
	// Values like 2WD, 4Runner, and bin labels like 15K-20K start with
	// digits but are identifiers, not numbers.
	s := parseSelect(t, "SELECT * FROM t WHERE Drivetrain = 2WD AND Model = 4Runner")
	and := s.Where.(*expr.And)
	if cmp := and.Kids[0].(*expr.Cmp); cmp.Str != "2WD" {
		t.Errorf("2WD parsed as %+v", cmp)
	}
	if cmp := and.Kids[1].(*expr.Cmp); cmp.Str != "4Runner" {
		t.Errorf("4Runner parsed as %+v", cmp)
	}
	s = parseSelect(t, "SELECT * FROM t WHERE PriceBin = 15K-20K")
	if cmp := s.Where.(*expr.Cmp); cmp.Str != "15K-20K" {
		t.Errorf("bin label parsed as %+v", cmp)
	}
	// Plain numbers and suffixes still lex as numbers.
	s = parseSelect(t, "SELECT * FROM t WHERE Year = 2011 AND Price < 20K")
	and = s.Where.(*expr.And)
	if cmp := and.Kids[0].(*expr.Cmp); cmp.Num != 2011 {
		t.Errorf("2011 parsed as %+v", cmp)
	}
	if cmp := and.Kids[1].(*expr.Cmp); cmp.Num != 20000 {
		t.Errorf("20K parsed as %+v", cmp)
	}
}

func TestParseMSuffix(t *testing.T) {
	s := parseSelect(t, "SELECT * FROM t WHERE Price < 1.5M")
	cmp := s.Where.(*expr.Cmp)
	if cmp.Num != 1.5e6 {
		t.Errorf("M suffix: %+v", cmp)
	}
}

func TestTokenStringAndErrors(t *testing.T) {
	toks, err := lex("a = 1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(toks[0].String(), "a") {
		t.Errorf("token String = %q", toks[0].String())
	}
	eof := toks[len(toks)-1]
	if eof.String() != "end of input" {
		t.Errorf("EOF String = %q", eof.String())
	}
}
