package cadql

import (
	"fmt"
	"strings"

	"dbexplorer/internal/expr"
)

// Expectation categories. The suggestion service switches on Category to
// decide what completes the statement at the frontier: keywords and
// syntax come straight from the grammar, attribute/table/value/number
// positions are filled from the data.
const (
	ExpectKeyword   = "keyword"   // Label is the keyword text (uppercase)
	ExpectOp        = "op"        // a comparison operator position
	ExpectPunct     = "punct"     // structural punctuation (Label is the token)
	ExpectAttribute = "attribute" // an attribute (column) name
	ExpectTable     = "table"     // a table name
	ExpectValue     = "value"     // a value literal; Attr/Op give context
	ExpectNumber    = "number"    // a numeric literal; Attr may give context
	ExpectName      = "name"      // some other identifier (CADVIEW name, ...)
)

// Expectation is one viable token class at the recovery frontier: what
// the parser would have accepted at the farthest position it reached.
type Expectation struct {
	// Label is the token text for keyword/op/punct expectations and the
	// parser's description otherwise ("attribute name", "LIMIT count").
	Label string
	// Category is one of the Expect* constants.
	Category string
	// Attr and Op carry the predicate context of value and number
	// expectations: which attribute (and under which operator) the
	// literal would complete. Empty outside predicates.
	Attr string
	Op   string
}

// ParseError is the typed error of a failed recovery-mode parse: the
// byte offset of the frontier, the offending token, and every token
// class that would have been accepted there. httpapi surfaces it as the
// {code: "parse_error", pos, expected[]} envelope.
type ParseError struct {
	// Pos is the byte offset of the frontier in the input.
	Pos int
	// Got is the token found at the frontier ("" at end of input).
	Got string
	// Expected are display labels of the viable token classes.
	Expected []string
	// Msg is the classic parser error message.
	Msg string
}

// Error renders the classic message plus the expectation hint.
func (e *ParseError) Error() string {
	if len(e.Expected) == 0 {
		return e.Msg
	}
	return fmt.Sprintf("%s (expected: %s)", e.Msg, strings.Join(e.Expected, ", "))
}

// recPred is one completed WHERE predicate with its binding context:
// predicates inside a disjunction or under NOT do not conjunctively
// constrain the result set and are excluded from the suggestion prefix.
type recPred struct {
	e        expr.Expr
	disjunct bool
	negated  bool
}

// recorder accumulates recovery state during one parse: the expectation
// frontier (farthest token position any test failed at, with the set of
// expectations recorded there) plus completed predicates and tables.
type recorder struct {
	at     int // token index of the frontier; -1 = no failed test yet
	exps   []Expectation
	preds  []recPred
	tables []string
}

// want records an expectation at tokIdx. Only the farthest position is
// kept: a failure deeper in the input supersedes everything before it,
// which is exactly the "expected token set at the error position" a
// recursive-descent parser can report for free.
func (r *recorder) want(tokIdx int, e Expectation) {
	if tokIdx < r.at {
		return
	}
	if tokIdx > r.at {
		r.at = tokIdx
		r.exps = r.exps[:0]
	}
	for _, have := range r.exps {
		if have == e {
			return
		}
	}
	r.exps = append(r.exps, e)
}

// Recovery is the result of a recovery-mode parse. Exactly one of Stmt
// and Err is non-nil. Even on success the expectation set is populated:
// it then lists the token classes that could extend the statement (AND,
// OR, ORDER, LIMIT, ...), which is what statement completion wants for
// an input that happens to parse.
type Recovery struct {
	// Stmt is the parsed statement when the input is complete and valid.
	Stmt Stmt
	// Err is the typed parse error when it is not.
	Err *ParseError
	// Pos is the byte offset of the frontier (end of input on success).
	Pos int
	// Got is the token at the frontier ("" when the frontier is EOF).
	Got string
	// AtEnd reports whether the frontier is the end of the input — the
	// completion case, as opposed to a syntax error mid-statement.
	AtEnd bool
	// Expected are the viable token classes at the frontier.
	Expected []Expectation
	// Conjuncts are the completed WHERE predicates that conjunctively
	// bind the result set (predicates under OR or NOT are excluded).
	// Each element is an *expr.Cmp, *expr.In, or *expr.Between.
	Conjuncts []expr.Expr
	// Tables are the FROM tables parsed so far.
	Tables []string
}

// ExpectedLabels returns the display labels of the expectation set.
func (r *Recovery) ExpectedLabels() []string {
	out := make([]string, len(r.Expected))
	for i, e := range r.Expected {
		out[i] = e.Label
	}
	return out
}

// Recover parses input in recovery mode: instead of stopping at the
// first syntax error it reports the expectation frontier — the farthest
// position reached and every token class viable there — together with
// the statement context accumulated up to that point (conjunctive WHERE
// predicates, FROM tables). It never fails: an unlexable input yields a
// Recovery whose Err has no expectations.
func Recover(input string) *Recovery {
	out := &Recovery{AtEnd: true, Pos: len(input)}
	toks, err := lex(input)
	if err != nil {
		out.AtEnd = false
		out.Err = &ParseError{Pos: len(input), Msg: err.Error()}
		return out
	}
	rec := &recorder{at: -1}
	stmt, perr := parseToks(toks, rec)
	if rec.at >= 0 {
		t := toks[rec.at]
		out.Pos = t.pos
		out.AtEnd = t.kind == tokEOF
		if t.kind != tokEOF {
			out.Got = t.text
		}
		out.Expected = append([]Expectation(nil), rec.exps...)
	}
	for _, pr := range rec.preds {
		if !pr.disjunct && !pr.negated {
			out.Conjuncts = append(out.Conjuncts, pr.e)
		}
	}
	out.Tables = rec.tables
	if perr != nil {
		out.Err = &ParseError{Pos: out.Pos, Got: out.Got, Expected: out.ExpectedLabels(), Msg: perr.Error()}
	} else {
		out.Stmt = stmt
	}
	return out
}
