package cadql

import (
	"fmt"
	"math"
	"strings"

	"dbexplorer/internal/expr"
)

// Parse parses one CADQL statement. A trailing semicolon is allowed.
func Parse(input string) (Stmt, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	return parseToks(toks, nil)
}

// parseToks runs the recursive-descent parse over lexed tokens. A
// non-nil recorder turns on recovery mode: every failed token test is
// recorded as an expectation at its position (farthest position wins),
// and completed WHERE predicates plus FROM tables are captured for the
// suggestion service. With rec == nil the behavior and error messages
// are exactly the classic Parse path.
func parseToks(toks []token, rec *recorder) (Stmt, error) {
	p := &parser{toks: toks, rec: rec}
	var stmt Stmt
	var err error
	switch {
	case p.peekKeyword("SELECT"):
		stmt, err = p.parseSelect()
	case p.peekKeyword("CREATE"):
		stmt, err = p.parseCreateCADView()
	case p.peekKeyword("HIGHLIGHT"):
		stmt, err = p.parseHighlight()
	case p.peekKeyword("REORDER"):
		stmt, err = p.parseReorder()
	case p.peekKeyword("SHOW"):
		stmt, err = p.parseShow()
	case p.peekKeyword("DESCRIBE"), p.peekKeyword("DESC"):
		stmt, err = p.parseDescribe()
	case p.peekKeyword("DROP"):
		stmt, err = p.parseDrop()
	case p.peekKeyword("EXPLAIN"):
		p.pos++
		inner, innerErr := p.parseCreateCADView()
		if innerErr != nil {
			err = innerErr
			break
		}
		stmt = &ExplainStmt{Create: inner.(*CreateCADViewStmt)}
	default:
		return nil, fmt.Errorf("cadql: statement must start with SELECT, CREATE CADVIEW, HIGHLIGHT, REORDER, SHOW, DESCRIBE, or DROP; got %s", p.peek())
	}
	if err != nil {
		return nil, err
	}
	p.acceptPunct(";")
	if p.peek().kind != tokEOF {
		return nil, fmt.Errorf("cadql: unexpected trailing %s", p.peek())
	}
	return stmt, nil
}

type parser struct {
	toks []token
	pos  int

	// rec, when non-nil, collects the expectations behind every failed
	// token test (recovery mode; see recover.go). curAttr/curOp hold the
	// predicate context while parsePredicate runs, so value and number
	// expectations know which attribute they complete.
	rec     *recorder
	curAttr string
	curOp   string
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

// want records a failed expectation at the current token (recovery mode
// only). Value and number expectations carry the predicate context.
func (p *parser) want(category, label string) {
	if p.rec == nil {
		return
	}
	e := Expectation{Label: label, Category: category}
	if category == ExpectValue || category == ExpectNumber || category == ExpectOp {
		e.Attr, e.Op = p.curAttr, p.curOp
	}
	p.rec.want(p.pos, e)
}

func (p *parser) peekKeyword(kw string) bool {
	t := p.peek()
	if t.kind == tokIdent && strings.EqualFold(t.text, kw) {
		return true
	}
	p.want(ExpectKeyword, strings.ToUpper(kw))
	return false
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.peekKeyword(kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return fmt.Errorf("cadql: expected %s, got %s", kw, p.peek())
	}
	return nil
}

func (p *parser) acceptPunct(s string) bool {
	t := p.peek()
	if t.kind == tokPunct && t.text == s {
		p.pos++
		return true
	}
	p.want(ExpectPunct, s)
	return false
}

func (p *parser) expectPunct(s string) error {
	if !p.acceptPunct(s) {
		return fmt.Errorf("cadql: expected %q, got %s", s, p.peek())
	}
	return nil
}

func (p *parser) acceptOp(s string) bool {
	t := p.peek()
	if t.kind == tokOp && t.text == s {
		p.pos++
		return true
	}
	p.want(ExpectOp, s)
	return false
}

// expectIdent returns the next token's text if it is an identifier or
// quoted string.
func (p *parser) expectIdent(what string) (string, error) {
	t := p.peek()
	if t.kind == tokIdent || t.kind == tokString {
		p.pos++
		return t.text, nil
	}
	p.want(identCategory(what), what)
	return "", fmt.Errorf("cadql: expected %s, got %s", what, t)
}

// identCategory maps expectIdent's description to an expectation
// category, so the suggestion layer knows whether an attribute name, a
// table name, or a value literal completes the statement.
func identCategory(what string) string {
	switch {
	case strings.Contains(what, "attribute"), what == "column name":
		return ExpectAttribute
	case strings.Contains(what, "table"):
		return ExpectTable
	case strings.Contains(what, "value"):
		return ExpectValue
	default:
		return ExpectName
	}
}

func (p *parser) expectNumber(what string) (float64, error) {
	t := p.peek()
	if t.kind != tokNumber {
		p.want(ExpectNumber, what)
		return 0, fmt.Errorf("cadql: expected %s, got %s", what, t)
	}
	p.pos++
	return t.num, nil
}

var reservedAfterColumn = map[string]bool{
	"FROM": true, "WHERE": true, "LIMIT": true, "ORDER": true,
	"IUNITS": true, "AND": true, "OR": true, "NOT": true,
}

func (p *parser) parseSelect() (Stmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	s := &SelectStmt{}
	if !p.acceptPunct("*") {
		cols, err := p.parseNameList()
		if err != nil {
			return nil, err
		}
		s.Columns = cols
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	tables, err := p.parseFromList()
	if err != nil {
		return nil, err
	}
	s.Tables = tables
	if p.acceptKeyword("WHERE") {
		w, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		s.Where = w
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		keys, err := p.parseOrderKeys()
		if err != nil {
			return nil, err
		}
		s.OrderBy = keys
	}
	if p.acceptKeyword("LIMIT") {
		n, err := p.expectNumber("LIMIT count")
		if err != nil {
			return nil, err
		}
		if n < 1 || n != math.Trunc(n) {
			return nil, fmt.Errorf("cadql: LIMIT must be a positive integer, got %g", n)
		}
		s.Limit = int(n)
	}
	return s, nil
}

// parseFromList parses the FROM clause's comma-separated table names.
func (p *parser) parseFromList() ([]string, error) {
	var tables []string
	for {
		name, err := p.expectIdent("table name")
		if err != nil {
			return nil, err
		}
		tables = append(tables, name)
		if !p.acceptPunct(",") {
			if p.rec != nil {
				p.rec.tables = append(p.rec.tables, tables...)
			}
			return tables, nil
		}
	}
}

func (p *parser) parseOrderKeys() ([]OrderKey, error) {
	var keys []OrderKey
	for {
		attr, err := p.expectIdent("ORDER BY attribute")
		if err != nil {
			return nil, err
		}
		key := OrderKey{Attr: attr}
		if p.acceptKeyword("DESC") {
			key.Desc = true
		} else {
			p.acceptKeyword("ASC")
		}
		keys = append(keys, key)
		if !p.acceptPunct(",") {
			return keys, nil
		}
	}
}

func (p *parser) parseNameList() ([]string, error) {
	var names []string
	for {
		name, err := p.expectIdent("column name")
		if err != nil {
			return nil, err
		}
		if reservedAfterColumn[strings.ToUpper(name)] {
			return nil, fmt.Errorf("cadql: unexpected keyword %q in column list", name)
		}
		names = append(names, name)
		if !p.acceptPunct(",") {
			return names, nil
		}
	}
}

func (p *parser) parseCreateCADView() (Stmt, error) {
	if err := p.expectKeyword("CREATE"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("CADVIEW"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent("CADVIEW name")
	if err != nil {
		return nil, err
	}
	s := &CreateCADViewStmt{Name: name}
	if err := p.expectKeyword("AS"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("PIVOT"); err != nil {
		return nil, err
	}
	if !p.acceptOp("=") {
		return nil, fmt.Errorf("cadql: expected '=' after SET pivot, got %s", p.peek())
	}
	pivot, err := p.expectIdent("pivot attribute")
	if err != nil {
		return nil, err
	}
	s.Pivot = pivot
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	if !p.acceptPunct("*") && !p.peekKeyword("FROM") {
		cols, err := p.parseNameList()
		if err != nil {
			return nil, err
		}
		s.Compare = cols
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	tables, err := p.parseFromList()
	if err != nil {
		return nil, err
	}
	s.Tables = tables
	if p.acceptKeyword("WHERE") {
		w, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		s.Where = w
	}
	if p.acceptKeyword("LIMIT") {
		if err := p.expectKeyword("COLUMNS"); err != nil {
			return nil, err
		}
		n, err := p.expectNumber("LIMIT COLUMNS count")
		if err != nil {
			return nil, err
		}
		if n < 1 || n != math.Trunc(n) {
			return nil, fmt.Errorf("cadql: LIMIT COLUMNS must be a positive integer, got %g", n)
		}
		s.MaxCompare = int(n)
	}
	if p.acceptKeyword("IUNITS") {
		n, err := p.expectNumber("IUNITS count")
		if err != nil {
			return nil, err
		}
		if n < 1 || n != math.Trunc(n) {
			return nil, fmt.Errorf("cadql: IUNITS must be a positive integer, got %g", n)
		}
		s.IUnits = int(n)
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		keys, err := p.parseOrderKeys()
		if err != nil {
			return nil, err
		}
		s.OrderBy = keys
	}
	return s, nil
}

func (p *parser) parseHighlight() (Stmt, error) {
	for _, kw := range []string{"HIGHLIGHT", "SIMILAR", "IUNITS", "IN"} {
		if err := p.expectKeyword(kw); err != nil {
			return nil, err
		}
	}
	view, err := p.expectIdent("CADVIEW name")
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("WHERE"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("SIMILARITY"); err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	val, err := p.expectIdent("pivot value")
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(","); err != nil {
		return nil, err
	}
	rank, err := p.expectNumber("IUnit rank")
	if err != nil {
		return nil, err
	}
	if rank < 1 || rank != math.Trunc(rank) {
		return nil, fmt.Errorf("cadql: IUnit rank must be a positive integer, got %g", rank)
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if !p.acceptOp(">") && !p.acceptOp(">=") {
		return nil, fmt.Errorf("cadql: expected '>' after SIMILARITY(...), got %s", p.peek())
	}
	tau, err := p.expectNumber("similarity threshold")
	if err != nil {
		return nil, err
	}
	return &HighlightStmt{View: view, PivotValue: val, Rank: int(rank), Threshold: tau}, nil
}

func (p *parser) parseReorder() (Stmt, error) {
	for _, kw := range []string{"REORDER", "ROWS", "IN"} {
		if err := p.expectKeyword(kw); err != nil {
			return nil, err
		}
	}
	view, err := p.expectIdent("CADVIEW name")
	if err != nil {
		return nil, err
	}
	for _, kw := range []string{"ORDER", "BY", "SIMILARITY"} {
		if err := p.expectKeyword(kw); err != nil {
			return nil, err
		}
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	val, err := p.expectIdent("pivot value")
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	s := &ReorderStmt{View: view, PivotValue: val, Desc: true}
	if p.acceptKeyword("ASC") {
		s.Desc = false
	} else {
		p.acceptKeyword("DESC")
	}
	return s, nil
}

func (p *parser) parseShow() (Stmt, error) {
	if err := p.expectKeyword("SHOW"); err != nil {
		return nil, err
	}
	switch {
	case p.acceptKeyword("TABLES"):
		return &ShowStmt{What: "TABLES"}, nil
	case p.acceptKeyword("CADVIEWS"):
		return &ShowStmt{What: "CADVIEWS"}, nil
	default:
		return nil, fmt.Errorf("cadql: expected TABLES or CADVIEWS after SHOW, got %s", p.peek())
	}
}

func (p *parser) parseDescribe() (Stmt, error) {
	p.pos++ // DESCRIBE or DESC
	table, err := p.expectIdent("table name")
	if err != nil {
		return nil, err
	}
	return &DescribeStmt{Table: table}, nil
}

func (p *parser) parseDrop() (Stmt, error) {
	if err := p.expectKeyword("DROP"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("CADVIEW"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent("CADVIEW name")
	if err != nil {
		return nil, err
	}
	return &DropStmt{View: name}, nil
}

// parseOr parses a WHERE clause disjunction. In recovery mode every
// predicate completed inside a genuine disjunction is marked as such —
// the suggestion prefix only trusts conjunctively binding predicates.
func (p *parser) parseOr() (e expr.Expr, err error) {
	mark, sawOr := 0, false
	if p.rec != nil {
		mark = len(p.rec.preds)
		defer func() {
			if sawOr {
				for i := mark; i < len(p.rec.preds); i++ {
					p.rec.preds[i].disjunct = true
				}
			}
		}()
	}
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	kids := []expr.Expr{left}
	for p.acceptKeyword("OR") {
		sawOr = true
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		kids = append(kids, right)
	}
	if len(kids) == 1 {
		return left, nil
	}
	return &expr.Or{Kids: kids}, nil
}

func (p *parser) parseAnd() (expr.Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	kids := []expr.Expr{left}
	for p.acceptKeyword("AND") {
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		kids = append(kids, right)
	}
	if len(kids) == 1 {
		return left, nil
	}
	return &expr.And{Kids: kids}, nil
}

func (p *parser) parseUnary() (expr.Expr, error) {
	if p.acceptKeyword("NOT") {
		if p.rec != nil {
			mark := len(p.rec.preds)
			defer func() {
				for i := mark; i < len(p.rec.preds); i++ {
					p.rec.preds[i].negated = true
				}
			}()
		}
		kid, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &expr.Not{Kid: kid}, nil
	}
	if p.acceptPunct("(") {
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	return p.parsePredicate()
}

// recordPred captures one completed predicate for the suggestion prefix
// (recovery mode only).
func (p *parser) recordPred(e expr.Expr) {
	if p.rec != nil {
		p.rec.preds = append(p.rec.preds, recPred{e: e})
	}
}

func (p *parser) parsePredicate() (expr.Expr, error) {
	attr, err := p.expectIdent("attribute name")
	if err != nil {
		return nil, err
	}
	p.curAttr = attr
	defer func() { p.curAttr, p.curOp = "", "" }()
	switch {
	case p.acceptKeyword("BETWEEN"):
		p.curOp = "BETWEEN"
		lo, err := p.expectNumber("BETWEEN lower bound")
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.expectNumber("BETWEEN upper bound")
		if err != nil {
			return nil, err
		}
		e := &expr.Between{Attr: attr, Lo: lo, Hi: hi}
		p.recordPred(e)
		return e, nil
	case p.acceptKeyword("IN"):
		p.curOp = "IN"
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		var values []string
		for {
			v, err := p.expectIdent("IN list value")
			if err != nil {
				return nil, err
			}
			values = append(values, v)
			if !p.acceptPunct(",") {
				break
			}
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		e := &expr.In{Attr: attr, Values: values}
		p.recordPred(e)
		return e, nil
	default:
		t := p.peek()
		if t.kind != tokOp {
			p.want(ExpectOp, "comparison operator")
			return nil, fmt.Errorf("cadql: expected comparison operator after %q, got %s", attr, t)
		}
		p.pos++
		p.curOp = t.text
		var op expr.CmpOp
		switch t.text {
		case "=":
			op = expr.Eq
		case "!=":
			op = expr.Ne
		case "<":
			op = expr.Lt
		case "<=":
			op = expr.Le
		case ">":
			op = expr.Gt
		case ">=":
			op = expr.Ge
		default:
			return nil, fmt.Errorf("cadql: unknown operator %q", t.text)
		}
		v := p.peek()
		switch v.kind {
		case tokNumber:
			p.pos++
			e := &expr.Cmp{Attr: attr, Op: op, Str: v.text, Num: v.num}
			p.recordPred(e)
			return e, nil
		case tokIdent, tokString:
			p.pos++
			// Literal resolves by column type at validation: categorical
			// columns match Str, numeric columns reject NaN.
			e := &expr.Cmp{Attr: attr, Op: op, Str: v.text, Num: math.NaN()}
			p.recordPred(e)
			return e, nil
		default:
			p.want(ExpectValue, "literal")
			return nil, fmt.Errorf("cadql: expected literal after %s, got %s", t.text, v)
		}
	}
}
