package cadql

import "dbexplorer/internal/expr"

// Stmt is a parsed CADQL statement.
type Stmt interface{ stmt() }

// SelectStmt is a plain lookup query:
//
//	SELECT * | a, b, ... FROM table [WHERE pred] [LIMIT n]
type SelectStmt struct {
	// Columns lists the projection; empty means SELECT *.
	Columns []string
	// Tables is the FROM list; multiple tables natural-join
	// left-to-right, per the paper's "FROM table1, table2..." grammar.
	Tables []string
	Where  expr.Expr
	// OrderBy sorts the result rows before Limit applies.
	OrderBy []OrderKey
	// Limit caps returned rows; 0 means no limit.
	Limit int
}

// Table returns the first FROM table, for the common single-table case.
func (s *SelectStmt) Table() string {
	if len(s.Tables) == 0 {
		return ""
	}
	return s.Tables[0]
}

func (*SelectStmt) stmt() {}

// OrderKey is one ORDER BY entry of CREATE CADVIEW; it names the numeric
// attribute whose cluster mean ranks IUnits, and the direction.
type OrderKey struct {
	Attr string
	Desc bool
}

// CreateCADViewStmt is the paper's exploratory query:
//
//	CREATE CADVIEW name AS
//	SET pivot = attr
//	SELECT a, b, ... FROM table
//	[WHERE pred]
//	[LIMIT COLUMNS m] [IUNITS k]
//	[ORDER BY attr [ASC|DESC], ...]
type CreateCADViewStmt struct {
	Name    string
	Pivot   string
	Compare []string // explicit Compare Attributes from the SELECT list
	// Tables is the FROM list (natural-joined when more than one).
	Tables []string
	Where  expr.Expr
	// MaxCompare is LIMIT COLUMNS (0 = default).
	MaxCompare int
	// IUnits is the IUNITS count (0 = default).
	IUnits int
	// OrderBy holds the IUnit preference keys (empty = cluster size).
	OrderBy []OrderKey
}

func (*CreateCADViewStmt) stmt() {}

// HighlightStmt finds IUnits similar to a reference cell:
//
//	HIGHLIGHT SIMILAR IUNITS IN view WHERE SIMILARITY(value, rank) > tau
type HighlightStmt struct {
	View       string
	PivotValue string
	Rank       int
	Threshold  float64
}

func (*HighlightStmt) stmt() {}

// ReorderStmt reorders pivot rows by similarity to a reference value:
//
//	REORDER ROWS IN view ORDER BY SIMILARITY(value) [ASC|DESC]
type ReorderStmt struct {
	View       string
	PivotValue string
	// Desc true (the default) means most-similar first.
	Desc bool
}

func (*ReorderStmt) stmt() {}

// ExplainStmt analyzes a CREATE CADVIEW statement without storing the
// view: result-set size, pivot value counts, the ranked Compare
// Attribute candidates with their chi-square relevance, and build
// timings.
//
//	EXPLAIN CREATE CADVIEW ...
type ExplainStmt struct {
	Create *CreateCADViewStmt
}

func (*ExplainStmt) stmt() {}

// ShowStmt lists session objects:
//
//	SHOW TABLES | SHOW CADVIEWS
type ShowStmt struct {
	// What is "TABLES" or "CADVIEWS" (normalized uppercase).
	What string
}

func (*ShowStmt) stmt() {}

// DescribeStmt prints a table's schema:
//
//	DESCRIBE table
type DescribeStmt struct {
	Table string
}

func (*DescribeStmt) stmt() {}

// DropStmt removes a stored CAD View:
//
//	DROP CADVIEW name
type DropStmt struct {
	View string
}

func (*DropStmt) stmt() {}
