package cadql

import (
	"strings"
	"testing"

	"dbexplorer/internal/expr"
)

// labels flattens the expectation set for containment checks.
func labels(r *Recovery) map[string]bool {
	out := map[string]bool{}
	for _, e := range r.Expected {
		out[e.Category+":"+e.Label] = true
	}
	return out
}

func TestRecoverEmptyInput(t *testing.T) {
	r := Recover("")
	if r.Err == nil {
		t.Fatal("want parse error on empty input")
	}
	if !r.AtEnd {
		t.Error("frontier should be at end of input")
	}
	got := labels(r)
	for _, kw := range []string{"SELECT", "CREATE", "HIGHLIGHT", "REORDER", "SHOW", "DESCRIBE", "DROP", "EXPLAIN"} {
		if !got["keyword:"+kw] {
			t.Errorf("expected keyword %s missing from %v", kw, r.ExpectedLabels())
		}
	}
}

func TestRecoverValuePosition(t *testing.T) {
	r := Recover("SELECT * FROM cars WHERE Make = ")
	if r.Err == nil {
		t.Fatal("want parse error")
	}
	if !r.AtEnd {
		t.Errorf("AtEnd = false, want true (pos %d, got %q)", r.Pos, r.Got)
	}
	var val *Expectation
	for i := range r.Expected {
		if r.Expected[i].Category == ExpectValue {
			val = &r.Expected[i]
		}
	}
	if val == nil {
		t.Fatalf("no value expectation in %+v", r.Expected)
	}
	if val.Attr != "Make" || val.Op != "=" {
		t.Errorf("value context = (%q, %q), want (Make, =)", val.Attr, val.Op)
	}
	if len(r.Tables) != 1 || r.Tables[0] != "cars" {
		t.Errorf("tables = %v, want [cars]", r.Tables)
	}
}

func TestRecoverOperatorPosition(t *testing.T) {
	r := Recover("SELECT * FROM cars WHERE Price ")
	got := labels(r)
	if !got["op:comparison operator"] {
		t.Errorf("missing operator expectation: %v", r.Expected)
	}
	if !got["keyword:BETWEEN"] || !got["keyword:IN"] {
		t.Errorf("missing BETWEEN/IN keywords: %v", r.ExpectedLabels())
	}
}

func TestRecoverAttributePosition(t *testing.T) {
	r := Recover("SELECT * FROM cars WHERE ")
	found := false
	for _, e := range r.Expected {
		if e.Category == ExpectAttribute {
			found = true
		}
	}
	if !found {
		t.Errorf("no attribute expectation in %+v", r.Expected)
	}
}

func TestRecoverConjunctPrefix(t *testing.T) {
	r := Recover("SELECT * FROM cars WHERE Make = Ford AND Price < 20000 AND BodyType = ")
	if len(r.Conjuncts) != 2 {
		t.Fatalf("conjuncts = %d, want 2 (%v)", len(r.Conjuncts), r.Conjuncts)
	}
	cmp, ok := r.Conjuncts[0].(*expr.Cmp)
	if !ok || cmp.Attr != "Make" || cmp.Str != "Ford" {
		t.Errorf("first conjunct = %#v, want Make = Ford", r.Conjuncts[0])
	}
}

func TestRecoverDisjunctExcluded(t *testing.T) {
	// Predicates inside an OR do not conjunctively bind; the completion
	// of the second branch must not be restricted by the first.
	r := Recover("SELECT * FROM cars WHERE BodyType = SUV AND (Make = Ford OR Make = ")
	if len(r.Conjuncts) != 1 {
		t.Fatalf("conjuncts = %v, want only BodyType = SUV", r.Conjuncts)
	}
	if c := r.Conjuncts[0].(*expr.Cmp); c.Attr != "BodyType" {
		t.Errorf("conjunct attr = %q, want BodyType", c.Attr)
	}
}

func TestRecoverNegatedExcluded(t *testing.T) {
	r := Recover("SELECT * FROM cars WHERE NOT Make = Ford AND BodyType = ")
	if len(r.Conjuncts) != 0 {
		t.Fatalf("conjuncts = %v, want none (NOT branch excluded)", r.Conjuncts)
	}
}

func TestRecoverCompleteStatementContinuations(t *testing.T) {
	r := Recover("SELECT * FROM cars WHERE Make = Ford")
	if r.Err != nil {
		t.Fatalf("unexpected parse error: %v", r.Err)
	}
	if r.Stmt == nil {
		t.Fatal("statement should have parsed")
	}
	got := labels(r)
	for _, kw := range []string{"AND", "OR", "ORDER", "LIMIT"} {
		if !got["keyword:"+kw] {
			t.Errorf("continuation %s missing from %v", kw, r.ExpectedLabels())
		}
	}
	if len(r.Conjuncts) != 1 {
		t.Errorf("conjuncts = %d, want 1", len(r.Conjuncts))
	}
}

func TestRecoverMidStatementError(t *testing.T) {
	r := Recover("SELECT * FROM cars WHERE Make = Ford ORDER Price")
	if r.Err == nil {
		t.Fatal("want parse error")
	}
	if r.AtEnd {
		t.Error("frontier should not be at end (BY missing before Price)")
	}
	if r.Got != "Price" {
		t.Errorf("got token = %q, want Price", r.Got)
	}
	if !labels(r)["keyword:BY"] {
		t.Errorf("expected BY, have %v", r.ExpectedLabels())
	}
	if r.Err.Pos != strings.Index("SELECT * FROM cars WHERE Make = Ford ORDER Price", "Price") {
		t.Errorf("pos = %d", r.Err.Pos)
	}
}

func TestRecoverLexError(t *testing.T) {
	r := Recover("SELECT * FROM cars WHERE Make = 'unterminated")
	if r.Err == nil {
		t.Fatal("want error for unterminated string")
	}
	if len(r.Expected) != 0 {
		t.Errorf("lex errors carry no expectations, got %v", r.Expected)
	}
}

func TestRecoverBetweenBounds(t *testing.T) {
	r := Recover("SELECT * FROM cars WHERE Price BETWEEN ")
	var num *Expectation
	for i := range r.Expected {
		if r.Expected[i].Category == ExpectNumber {
			num = &r.Expected[i]
		}
	}
	if num == nil {
		t.Fatalf("no number expectation in %+v", r.Expected)
	}
	if num.Attr != "Price" || num.Op != "BETWEEN" {
		t.Errorf("number context = (%q, %q), want (Price, BETWEEN)", num.Attr, num.Op)
	}
}

func TestRecoverInList(t *testing.T) {
	r := Recover("SELECT * FROM cars WHERE Make IN (Ford, ")
	var val *Expectation
	for i := range r.Expected {
		if r.Expected[i].Category == ExpectValue {
			val = &r.Expected[i]
		}
	}
	if val == nil {
		t.Fatalf("no value expectation in %+v", r.Expected)
	}
	if val.Attr != "Make" || val.Op != "IN" {
		t.Errorf("value context = (%q, %q), want (Make, IN)", val.Attr, val.Op)
	}
}

// TestRecoverMatchesParse asserts recovery mode accepts and rejects
// exactly what Parse does, over every statement shape the parser tests
// exercise.
func TestRecoverMatchesParse(t *testing.T) {
	inputs := []string{
		"SELECT * FROM UsedCars WHERE Make = 'Land Rover' AND Price <= 30K LIMIT 10",
		"CREATE CADVIEW v AS SET pivot = Make SELECT * FROM UsedCars WHERE Price BETWEEN 10K AND 20K",
		"SHOW TABLES",
		"DESCRIBE UsedCars;",
		"DROP CADVIEW CompareMakes",
		"SELECT * FROM a,",
		"SELECT FROM",
		"CREATE CADVIEW v AS SET pivot = ",
		"garbage input here",
		"",
	}
	for _, in := range inputs {
		_, perr := Parse(in)
		r := Recover(in)
		if (perr == nil) != (r.Err == nil) {
			t.Errorf("%q: Parse err=%v, Recover err=%v — must agree", in, perr, r.Err)
		}
		if perr == nil && r.Stmt == nil {
			t.Errorf("%q: Recover dropped the statement", in)
		}
	}
}
