// Package cadql implements the paper's SQL extension for exploratory
// search (§2.1.2): plain SELECT queries, CREATE CADVIEW, HIGHLIGHT
// SIMILAR IUNITS, and REORDER ROWS. It provides a hand-written lexer, a
// recursive-descent parser producing an AST, and compilation of WHERE
// clauses into package expr predicates. Numeric literals accept the
// paper's K-suffix shorthand (10K = 10000).
package cadql

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokOp    // = != < <= > >=
	tokPunct // ( ) , * .
)

type token struct {
	kind tokenKind
	text string // uppercase for idents? no — original text; keyword match is case-insensitive
	num  float64
	pos  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// lex splits the statement into tokens.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '\'':
			j := i + 1
			var sb strings.Builder
			for j < n && input[j] != '\'' {
				sb.WriteByte(input[j])
				j++
			}
			if j >= n {
				return nil, fmt.Errorf("cadql: unterminated string literal at offset %d", i)
			}
			toks = append(toks, token{kind: tokString, text: sb.String(), pos: i})
			i = j + 1
		case c >= '0' && c <= '9' || (c == '-' && i+1 < n && input[i+1] >= '0' && input[i+1] <= '9' && startsValue(toks)):
			j := i + 1
			for j < n && (input[j] >= '0' && input[j] <= '9' || input[j] == '.') {
				j++
			}
			text := input[i:j]
			mult := 1.0
			if j < n && (input[j] == 'K' || input[j] == 'k') && (j+1 >= n || !isIdentChar(input[j+1])) {
				mult = 1000
				j++
			} else if j < n && (input[j] == 'M' || input[j] == 'm') && (j+1 >= n || !isIdentChar(input[j+1])) {
				mult = 1e6
				j++
			}
			// A digit-led word that keeps going ("2WD", "4Runner",
			// "10Kx") is an identifier-like value, not a number.
			if j < n && isIdentChar(input[j]) {
				for j < n && isIdentChar(input[j]) {
					j++
				}
				toks = append(toks, token{kind: tokIdent, text: input[i:j], pos: i})
				i = j
				continue
			}
			v, err := strconv.ParseFloat(text, 64)
			if err != nil {
				return nil, fmt.Errorf("cadql: bad number %q at offset %d", text, i)
			}
			toks = append(toks, token{kind: tokNumber, text: input[i:j], num: v * mult, pos: i})
			i = j
		case isIdentStart(c):
			j := i + 1
			for j < n && isIdentChar(input[j]) {
				j++
			}
			toks = append(toks, token{kind: tokIdent, text: input[i:j], pos: i})
			i = j
		case c == '!':
			if i+1 < n && input[i+1] == '=' {
				toks = append(toks, token{kind: tokOp, text: "!=", pos: i})
				i += 2
			} else {
				return nil, fmt.Errorf("cadql: unexpected '!' at offset %d", i)
			}
		case c == '<' || c == '>':
			if i+1 < n && input[i+1] == '=' {
				toks = append(toks, token{kind: tokOp, text: input[i : i+2], pos: i})
				i += 2
			} else if c == '<' && i+1 < n && input[i+1] == '>' {
				toks = append(toks, token{kind: tokOp, text: "!=", pos: i})
				i += 2
			} else {
				toks = append(toks, token{kind: tokOp, text: string(c), pos: i})
				i++
			}
		case c == '=':
			toks = append(toks, token{kind: tokOp, text: "=", pos: i})
			i++
		case c == '(' || c == ')' || c == ',' || c == '*' || c == '.' || c == ';':
			toks = append(toks, token{kind: tokPunct, text: string(c), pos: i})
			i++
		default:
			return nil, fmt.Errorf("cadql: unexpected character %q at offset %d", rune(c), i)
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: n})
	return toks, nil
}

// startsValue reports whether a '-' at the current position begins a
// negative number (it follows an operator, keyword, comma, or open
// paren) rather than being part of an identifier context.
func startsValue(toks []token) bool {
	if len(toks) == 0 {
		return true
	}
	last := toks[len(toks)-1]
	switch last.kind {
	case tokOp:
		return true
	case tokPunct:
		return last.text == "(" || last.text == ","
	case tokIdent:
		up := strings.ToUpper(last.text)
		return up == "AND" || up == "OR" || up == "BETWEEN" || up == "IN"
	}
	return false
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentChar(c byte) bool {
	return c == '_' || c == '-' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}
