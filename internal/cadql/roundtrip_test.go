package cadql

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"dbexplorer/internal/dataset"
	"dbexplorer/internal/expr"
)

// roundTripTable gives predicates something to select against.
func roundTripTable() *dataset.Table {
	tbl := dataset.NewTable("t", dataset.Schema{
		{Name: "Make", Kind: dataset.Categorical, Queriable: true},
		{Name: "Drive", Kind: dataset.Categorical, Queriable: true},
		{Name: "Price", Kind: dataset.Numeric, Queriable: true},
		{Name: "Year", Kind: dataset.Numeric, Queriable: true},
	})
	rng := rand.New(rand.NewSource(4))
	makes := []string{"Ford", "Jeep", "Land Rover", "Kia"}
	drives := []string{"2WD", "4WD", "AWD"}
	for i := 0; i < 200; i++ {
		tbl.MustAppendRow(
			makes[rng.Intn(len(makes))],
			drives[rng.Intn(len(drives))],
			float64(rng.Intn(50))*1000,
			float64(2005+rng.Intn(9)),
		)
	}
	return tbl
}

// randomPredicate builds a random WHERE tree from a seed.
func randomPredicate(rng *rand.Rand, depth int) expr.Expr {
	if depth <= 0 || rng.Intn(3) == 0 {
		switch rng.Intn(5) {
		case 0:
			return &expr.Cmp{Attr: "Make", Op: expr.Eq, Str: []string{"Ford", "Jeep", "Land Rover"}[rng.Intn(3)]}
		case 1:
			return &expr.Cmp{Attr: "Drive", Op: expr.Ne, Str: []string{"2WD", "4WD"}[rng.Intn(2)]}
		case 2:
			ops := []expr.CmpOp{expr.Lt, expr.Le, expr.Gt, expr.Ge, expr.Eq, expr.Ne}
			return &expr.Cmp{Attr: "Price", Op: ops[rng.Intn(len(ops))], Num: float64(rng.Intn(50)) * 1000}
		case 3:
			lo := float64(2005 + rng.Intn(5))
			return &expr.Between{Attr: "Year", Lo: lo, Hi: lo + float64(rng.Intn(4))}
		default:
			return &expr.In{Attr: "Make", Values: []string{"Ford", "Land Rover"}[:1+rng.Intn(2)]}
		}
	}
	switch rng.Intn(3) {
	case 0:
		return &expr.And{Kids: []expr.Expr{randomPredicate(rng, depth-1), randomPredicate(rng, depth-1)}}
	case 1:
		return &expr.Or{Kids: []expr.Expr{randomPredicate(rng, depth-1), randomPredicate(rng, depth-1)}}
	default:
		return &expr.Not{Kid: randomPredicate(rng, depth-1)}
	}
}

// Property: rendering a predicate with String() and re-parsing it selects
// exactly the same rows.
func TestPredicateStringRoundTripProperty(t *testing.T) {
	tbl := roundTripTable()
	all := dataset.AllRows(tbl.NumRows())
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		orig := randomPredicate(rng, 3)
		wantRows, err := expr.Select(tbl, all, orig)
		if err != nil {
			t.Logf("original predicate invalid (%v): %s", err, orig)
			return false
		}
		query := "SELECT * FROM t WHERE " + orig.String()
		stmt, err := Parse(query)
		if err != nil {
			t.Logf("reparse failed for %q: %v", query, err)
			return false
		}
		got, err := expr.Select(tbl, all, stmt.(*SelectStmt).Where)
		if err != nil {
			t.Logf("re-parsed predicate invalid for %q: %v", query, err)
			return false
		}
		if wantRows.Jaccard(got) != 1 {
			t.Logf("row sets differ for %q", query)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// The paper's own query survives a render/reparse cycle.
func TestMarysQueryRoundTrip(t *testing.T) {
	q := `SELECT * FROM t WHERE Price BETWEEN 10K AND 30K AND Drive = 2WD AND Make IN (Jeep, 'Land Rover')`
	stmt, err := Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	where := stmt.(*SelectStmt).Where
	again, err := Parse(fmt.Sprintf("SELECT * FROM t WHERE %s", where.String()))
	if err != nil {
		t.Fatalf("reparse of %q: %v", where.String(), err)
	}
	tbl := roundTripTable()
	all := dataset.AllRows(tbl.NumRows())
	r1, err := expr.Select(tbl, all, where)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := expr.Select(tbl, all, again.(*SelectStmt).Where)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Jaccard(r2) != 1 {
		t.Error("round trip changed selection")
	}
}
