// Benchmarks for hybrid posting containers and cost-ordered predicate
// plans: depth-1..5 selective filter stacks and facet digests on a
// 1M-row Zipf-skewed table (the workload where sparse×sparse
// intersections dominate), plus posting-memory accounting for the same
// table. BENCH_bitmap.json records before (dense uint64 words) and
// after (hybrid array/bitmap/run containers) on the same machine.
package dbexplorer_test

import (
	"fmt"
	"sync"
	"testing"

	"dbexplorer/internal/datagen"
	"dbexplorer/internal/dataset"
	"dbexplorer/internal/dataview"
	"dbexplorer/internal/expr"
	"dbexplorer/internal/facet"
)

// zipfRows/zipfCard size the skewed fixture: 1M rows over five
// categorical columns of 1000 values each, Zipf exponent 1.3 — the head
// code owns ~25% of rows, codes past ~30 are under 0.5% each.
const (
	zipfRows = 1_000_000
	zipfCard = 1000
)

var (
	zipfOnce sync.Once
	zipfTbl  *dataset.Table
	zipfView *dataview.View
)

func zipfFixture(b *testing.B) {
	b.Helper()
	zipfOnce.Do(func() {
		cols := make([]datagen.ZipfColumn, 5)
		for i := range cols {
			cols[i] = datagen.ZipfColumn{Name: fmt.Sprintf("c%d", i), Card: zipfCard, S: 1.3}
		}
		zipfTbl = datagen.ZipfTable("zipf", zipfRows, cols, 1)
		v, err := dataview.New(zipfTbl, dataview.Options{})
		if err != nil {
			panic(err)
		}
		zipfView = v
	})
}

// zipfStack is a cumulative selective stack: each depth adds one more
// equality on a fresh column, with values chosen down the Zipf tail so
// the running intersection is under 1% of the table from depth 2 on and
// the leaves span head (dense posting) to tail (sparse posting).
var zipfStack = []struct{ attr, value string }{
	{"c0", "v0004"},
	{"c1", "v0009"},
	{"c2", "v0001"},
	{"c3", "v0019"},
	{"c4", "v0000"},
}

func zipfStackExpr(depth int) expr.Expr {
	kids := make([]expr.Expr, depth)
	for i := 0; i < depth; i++ {
		kids[i] = &expr.Cmp{Attr: zipfStack[i].attr, Op: expr.Eq, Str: zipfStack[i].value}
	}
	return &expr.And{Kids: kids}
}

// BenchmarkSelectiveFilterStack measures compiled WHERE evaluation of
// the selective stack at depths 1-5 over the 1M-row Zipf table. The
// plan is compiled once (binding is amortized across a session's
// repeated evaluations); each iteration evaluates to a result bitmap.
func BenchmarkSelectiveFilterStack(b *testing.B) {
	zipfFixture(b)
	for depth := 1; depth <= len(zipfStack); depth++ {
		c, err := expr.Compile(zipfTbl, zipfStackExpr(depth))
		if err != nil {
			b.Fatal(err)
		}
		// Warm the postings so iterations measure evaluation, not the
		// one-off lazy index build.
		if _, err := c.Bitmap(); err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := c.Bitmap(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSelectiveDigest measures one faceted interaction — add the
// stack's final selection, read the refreshed digest, remove it — with
// the first depth-1 selections already applied, on the Zipf table.
func BenchmarkSelectiveDigest(b *testing.B) {
	zipfFixture(b)
	for depth := 2; depth <= len(zipfStack); depth++ {
		sess := facet.NewSession(zipfView, dataset.AllRows(zipfTbl.NumRows()))
		for _, sel := range zipfStack[:depth-1] {
			if err := sess.Select(sel.attr, sel.value); err != nil {
				b.Fatal(err)
			}
		}
		sess.Digest() // warm cached filter bitmaps and postings
		last := zipfStack[depth-1]
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := sess.Select(last.attr, last.value); err != nil {
					b.Fatal(err)
				}
				sess.Digest()
				if err := sess.Deselect(last.attr, last.value); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkZipfPostingMemory reports the posting-index memory for the
// five Zipf columns of the 1M-row table as bytes/op — the number the
// ~10x compression claim is judged on (dense: rows/8 bytes × 1000 codes
// × 5 columns ≈ 625 MB; hybrid: head codes stay bitmap or run, the
// sparse tail collapses to uint16 arrays).
func BenchmarkZipfPostingMemory(b *testing.B) {
	zipfFixture(b)
	ix := zipfTbl.Index()
	for col := 0; col < 5; col++ {
		ix.CatPostings(col)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ix.MemoryBytes()
	}
	b.ReportMetric(float64(ix.MemoryBytes()), "posting-bytes")
}
