// Benchmarks for the segmented (morsel-per-segment) store build on the
// 1M-row Zipf table, timed at GOMAXPROCS 1/2/4/8. The "store" variant
// times the index structures the segmentation refactor rebuilt — one
// posting set per categorical column built by per-segment counting-sort
// scatter into 64K-row containers, plus the numeric column's
// per-segment sorted order — and the "cadview" variant times a cold Fig
// 8-style CAD View build end to end on top of them (view coding,
// Compare Attribute selection, clustering). BENCH_shard.json records
// both trajectories against the unsegmented parent build. The file is
// self-contained so the identical benchmark can run against older
// revisions for the baseline numbers.
package dbexplorer_test

import (
	"fmt"
	"runtime"
	"testing"

	"dbexplorer/internal/core"
	"dbexplorer/internal/dataset"
	"dbexplorer/internal/dataview"
)

// segBuildProcs is the Fig 8-style scaling axis. The recorded numbers
// note the host's real CPU count; on a single-core runner the trajectory
// is flat and the speedup is purely algorithmic.
var segBuildProcs = []int{1, 2, 4, 8}

// segBuildConfig pins the CAD View shape onto the Zipf fixture: the
// head column pivots over its six most frequent values (together the
// bulk of the table), every other column competes for the four Compare
// Attribute slots.
func segBuildConfig() core.Config {
	return core.Config{
		Pivot: "c0",
		PivotValues: []string{
			"v0000", "v0001", "v0002", "v0003", "v0004", "v0005",
		},
		MaxCompare: 4,
		K:          6,
		L:          9,
		Seed:       1,
		Parallel:   true,
	}
}

// BenchmarkSegmentedBuild times the segmented store build cold:
// ResetIndex forces every iteration to rebuild postings and sorted
// orders from the segmented column chunks — the paths that replaced the
// per-row Bitmap.Add loop and the whole-column sort — and the cadview
// variant layers a full cold CAD View construction on top with a fresh
// view per iteration, so no cache warmed by one iteration leaks into
// the next.
func BenchmarkSegmentedBuild(b *testing.B) {
	zipfFixture(b)
	rows := dataset.AllRows(zipfTbl.NumRows())
	score := zipfTbl.ColIndex("score")
	cfg := segBuildConfig()
	for _, procs := range segBuildProcs {
		b.Run(fmt.Sprintf("store/procs=%d", procs), func(b *testing.B) {
			defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				zipfTbl.ResetIndex()
				ix := zipfTbl.Index()
				for c := 0; c < zipfTbl.NumCols(); c++ {
					if zipfTbl.Cat(c) != nil {
						ix.CatPostings(c)
					}
				}
				if n := ix.NumCmpRangeLen(score, 500, true, true, false); n <= 0 {
					b.Fatal("order build returned", n)
				}
			}
		})
	}
	for _, procs := range segBuildProcs {
		b.Run(fmt.Sprintf("cadview/procs=%d", procs), func(b *testing.B) {
			defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				zipfTbl.ResetIndex()
				v, err := dataview.New(zipfTbl, dataview.Options{})
				if err != nil {
					b.Fatal(err)
				}
				if _, _, err := core.Build(v, rows, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
