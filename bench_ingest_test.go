// Benchmark for the live-data append path: appending a 1% delta to the
// 1M-row Zipf fixture and bringing the index back to fully-warm, either
// incrementally (Table.Index extends sealed segments — re-scattering
// only tail-segment posting containers and re-sorting only the tail
// segment's order) or by the cold path (ResetIndex discards everything
// and rebuilds all segments). BENCH_ingest.json records both on the
// same machine; the acceptance bar is >=10x for incremental. The file
// is self-contained so the identical benchmark can run against older
// revisions for baseline numbers.
package dbexplorer_test

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"dbexplorer/internal/datagen"
	"dbexplorer/internal/dataset"
)

// ingestDeltaRows is the appended batch: 1% of the 1M-row fixture,
// small enough to stay inside the mutable tail segment (the fixture's
// tail segment holds 16960 rows; +10000 stays under the 64K cap), so
// the incremental path touches exactly one segment per column.
const ingestDeltaRows = zipfRows / 100

var (
	ingestOnce  sync.Once
	ingestBase  [][]any
	ingestDelta [][]any
	ingestRef   *dataset.Table
)

// ingestFixture materializes base and delta batches from one Zipf draw
// so every iteration appends identical data.
func ingestFixture(b *testing.B) {
	b.Helper()
	ingestOnce.Do(func() {
		cols := make([]datagen.ZipfColumn, 5)
		for i := range cols {
			cols[i] = datagen.ZipfColumn{Name: fmt.Sprintf("c%d", i), Card: zipfCard, S: 1.3}
		}
		ingestRef = datagen.ZipfTable("ingest", zipfRows+ingestDeltaRows, cols, 1)
		ingestBase = tableRows(ingestRef, 0, zipfRows)
		ingestDelta = tableRows(ingestRef, zipfRows, zipfRows+ingestDeltaRows)
	})
}

// ingestBaseTable builds a warm 1M-row table: all base rows appended
// and every column's postings, frequencies, and sorted orders built, so
// the timed region starts from the steady state a live server is in
// when an ingest arrives.
func ingestBaseTable(b *testing.B) *dataset.Table {
	b.Helper()
	tbl := dataset.NewTable(ingestRef.Name(), ingestRef.Schema())
	if err := tbl.AppendBatch(ingestBase); err != nil {
		b.Fatal(err)
	}
	warmTableIndex(tbl)
	return tbl
}

// BenchmarkIncrementalAppend times re-indexing after a 1% append: the
// row append itself (identical work on both variants) runs outside the
// timer, so the measured region is exactly the cost of bringing the
// index back to fully-warm. The incremental variant lets Table.Index
// extend the existing structures (sealed segments reused verbatim, only
// the tail segment re-scattered and re-sorted); the coldrebuild variant
// forces ResetIndex first, rebuilding all 16 segments from scratch —
// the pre-PR behavior of any append.
func BenchmarkIncrementalAppend(b *testing.B) {
	ingestFixture(b)
	b.Run("incremental", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			tbl := ingestBaseTable(b)
			if err := tbl.AppendBatch(ingestDelta); err != nil {
				b.Fatal(err)
			}
			catX0, ordX0 := dataset.IndexExtendStats()
			runtime.GC() // keep fixture-rebuild garbage out of the timed region
			b.StartTimer()
			warmTableIndex(tbl)
			b.StopTimer()
			catX1, ordX1 := dataset.IndexExtendStats()
			if catX1 == catX0 && ordX1 == ordX0 {
				b.Fatal("append did not take the incremental extension path")
			}
			b.StartTimer()
		}
	})
	b.Run("coldrebuild", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			tbl := ingestBaseTable(b)
			if err := tbl.AppendBatch(ingestDelta); err != nil {
				b.Fatal(err)
			}
			tbl.ResetIndex()
			runtime.GC() // keep fixture-rebuild garbage out of the timed region
			b.StartTimer()
			warmTableIndex(tbl)
		}
	})
}
