// Benchmarks for the bound-pruned clustering kernel (DESIGN.md §16):
// the Lloyd kernel in isolation (pruned vs the exhaustive reference),
// concurrent restarts, and end-to-end CAD View builds over a correlated
// fixture whose latent-class structure is what the pruning bounds
// exploit. BENCH_cluster.json records the before/after numbers.
package dbexplorer_test

import (
	"testing"

	"dbexplorer/internal/cluster"
	"dbexplorer/internal/core"
	"dbexplorer/internal/datagen"
	"dbexplorer/internal/dataset"
	"dbexplorer/internal/dataview"
)

// clusterKernelPoints encodes the Figure-8 compare attributes over the
// first 8000 car rows — the same shape the largest pivot value of the
// 40K sweep feeds the kernel.
func clusterKernelPoints(b *testing.B) *cluster.SparsePoints {
	b.Helper()
	fixtures(b)
	attrs := []string{"Model", "Drivetrain", "FuelEconomy", "BodyType", "Engine", "Price"}
	sp, _, err := cluster.EncodeSparse(carView, carRows[:8000], attrs)
	if err != nil {
		b.Fatal(err)
	}
	return sp
}

// corrClusterTable is a 200K-row correlated-group fixture (ROADMAP item
// 4a): column values travel together through latent classes, giving the
// duplicate-collapsing kernel realistic cluster structure instead of
// independent-Zipf noise.
func corrClusterTable() *dataset.Table {
	groups := []datagen.CorrGroup{
		{Classes: 24, S: 1.3, Noise: 0.05, Cols: []datagen.CorrColumn{
			{Name: "make", Card: 40}, {Name: "model", Card: 400}, {Name: "trim", Card: 60},
		}},
		{Classes: 12, S: 1.4, Noise: 0.1, Cols: []datagen.CorrColumn{
			{Name: "region", Card: 16}, {Name: "dealer", Card: 200},
		}},
	}
	return datagen.CorrTable("corrcars", 200_000, groups, 1)
}

// BenchmarkClusterKernel isolates the Lloyd kernel (seeding +
// iterations) on the Figure-8 shape at l=15: the pruned default against
// the exhaustive reference scan, bit-identical outputs. The
// duplicate-collapse is cached on the fixture after the first call, so
// the delta between sub-benches is pure kernel time.
func BenchmarkClusterKernel(b *testing.B) {
	sp := clusterKernelPoints(b)
	b.Run("pruned", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cluster.KMeans(sp, 15, cluster.Options{Seed: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("exhaustive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cluster.KMeans(sp, 15, cluster.Options{Seed: 1, Exhaustive: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkClusterRestarts measures the concurrent restart fan-out
// (deterministic winner by lowest inertia, earliest index) against a
// single run.
func BenchmarkClusterRestarts(b *testing.B) {
	sp := clusterKernelPoints(b)
	for _, restarts := range []int{1, 4} {
		name := "restarts1"
		if restarts != 1 {
			name = "restarts4"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := cluster.KMeans(sp, 15, cluster.Options{Seed: 1, Restarts: restarts}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkClusterCorrBuild is the end-to-end CAD View build over the
// correlated 200K fixture — clustering dominates this build, so it
// tracks the kernel win at macro scale with realistic structure.
func BenchmarkClusterCorrBuild(b *testing.B) {
	tbl := corrClusterTable()
	v, err := dataview.New(tbl, dataview.Options{})
	if err != nil {
		b.Fatal(err)
	}
	rows := dataset.AllRows(tbl.NumRows())
	cfg := core.Config{Pivot: "make", MaxCompare: 4, K: 6, L: 12, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.Build(v, rows, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
