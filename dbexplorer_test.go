package dbexplorer_test

import (
	"strings"
	"testing"

	"dbexplorer"
)

func TestFacadeEndToEnd(t *testing.T) {
	cars := dbexplorer.UsedCars(3000, 1)
	sess := dbexplorer.NewSession()
	if err := sess.Register(cars); err != nil {
		t.Fatal(err)
	}
	res, err := sess.Exec(`CREATE CADVIEW CompareMakes AS
		SET pivot = Make
		SELECT Price FROM UsedCars
		WHERE BodyType = SUV AND Make IN (Jeep, Ford, Chevrolet)
		LIMIT COLUMNS 4 IUNITS 2`)
	if err != nil {
		t.Fatal(err)
	}
	out := dbexplorer.RenderResult(res, 0)
	if !strings.Contains(out, "Jeep") || !strings.Contains(out, "IUnit 1") {
		t.Errorf("render:\n%s", out)
	}
	h, err := dbexplorer.HighlightSimilar(res.View, res.View.Rows[0].Value, 1, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if dbexplorer.RenderCADView(res.View, h) == "" {
		t.Error("empty render")
	}
	re, sims, err := dbexplorer.ReorderRows(res.View, res.View.Rows[1].Value)
	if err != nil {
		t.Fatal(err)
	}
	if re.Rows[0].Value != res.View.Rows[1].Value || len(sims) != len(re.Rows) {
		t.Error("reorder wrong")
	}
}

func TestFacadeProgrammaticAPI(t *testing.T) {
	tbl := dbexplorer.NewTable("t", dbexplorer.Schema{
		{Name: "A", Kind: dbexplorer.Categorical, Queriable: true},
		{Name: "B", Kind: dbexplorer.Numeric, Queriable: true},
	})
	for i := 0; i < 60; i++ {
		v := "x"
		price := 10.0
		if i%2 == 0 {
			v = "y"
			price = 100.0
		}
		tbl.MustAppendRow(v, price+float64(i%5))
	}
	view, err := dbexplorer.NewView(tbl)
	if err != nil {
		t.Fatal(err)
	}
	rows := dbexplorer.AllRows(tbl.NumRows())
	cad, tm, err := dbexplorer.BuildCADView(view, rows, dbexplorer.CADConfig{Pivot: "A", K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(cad.Rows) != 2 || tm.Total() <= 0 {
		t.Errorf("rows=%d timings=%+v", len(cad.Rows), tm)
	}
	d := dbexplorer.Summarize(view, rows, true)
	if d.Count("A", "x") != 30 {
		t.Errorf("digest count = %d", d.Count("A", "x"))
	}
	fs := dbexplorer.NewFacetSession(view, rows)
	if err := fs.Select("A", "x"); err != nil {
		t.Fatal(err)
	}
	if fs.Count() != 30 {
		t.Errorf("facet count = %d", fs.Count())
	}
	tp := dbexplorer.NewTPFacet(view, rows)
	if _, err := tp.BuildCADView(dbexplorer.CADConfig{Pivot: "A", Seed: 1}); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeCSVRoundTrip(t *testing.T) {
	in := "A,B\nx,1\ny,2\n"
	tbl, err := dbexplorer.ReadCSV("t", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 2 {
		t.Errorf("rows = %d", tbl.NumRows())
	}
	if _, err := dbexplorer.ReadCSVFile("t", "/nonexistent/file.csv"); err == nil {
		t.Error("missing file: want error")
	}
}

func TestFacadeExperiments(t *testing.T) {
	if len(dbexplorer.Experiments()) != 15 {
		t.Errorf("experiments = %d, want 15", len(dbexplorer.Experiments()))
	}
	out, err := dbexplorer.RunExperiment("table1", dbexplorer.ExperimentConfig{Seed: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Chevrolet") {
		t.Error("table1 output missing Chevrolet")
	}
	if _, err := dbexplorer.RunExperiment("nope", dbexplorer.ExperimentConfig{}); err == nil {
		t.Error("unknown experiment: want error")
	}
}

func TestFacadeInteractionExtensions(t *testing.T) {
	cars := dbexplorer.UsedCars(4000, 1)
	view, err := dbexplorer.NewView(cars)
	if err != nil {
		t.Fatal(err)
	}
	rows := dbexplorer.AllRows(cars.NumRows())
	attrs := []string{"Make", "Model", "BodyType", "Engine", "Color"}

	deps, err := dbexplorer.DiscoverFDs(view, rows, attrs)
	if err != nil {
		t.Fatal(err)
	}
	foundFD := false
	for _, d := range deps {
		if d.Determinant == "Model" && d.Dependent == "Make" && d.Exact() {
			foundFD = true
		}
	}
	if !foundFD {
		t.Errorf("Model -> Make not discovered: %v", deps)
	}

	corrs, err := dbexplorer.DiscoverCorrelations(view, rows, attrs)
	if err != nil {
		t.Fatal(err)
	}
	if len(corrs) == 0 {
		t.Error("no correlations found")
	}

	net, err := dbexplorer.LearnBayesNet(view, rows, attrs, dbexplorer.BayesNetOptions{Root: "Make"})
	if err != nil {
		t.Fatal(err)
	}
	if net.Root != "Make" || net.Parent("Model") != "Make" {
		t.Errorf("network structure: root=%q parent(Model)=%q", net.Root, net.Parent("Model"))
	}

	tree, err := dbexplorer.BuildDecisionTree(view, rows, "Make", []string{"Model", "Engine"}, dbexplorer.DecisionTreeOptions{MaxDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Root.SplitAttr != "Model" {
		t.Errorf("tree root split = %q, want Model", tree.Root.SplitAttr)
	}
	if acc := tree.Accuracy(rows); acc < 0.99 {
		t.Errorf("Model-split accuracy = %.3f", acc)
	}
}

func TestFacadeNewStatements(t *testing.T) {
	sess := dbexplorer.NewSession()
	if err := sess.Register(dbexplorer.UsedCars(500, 1)); err != nil {
		t.Fatal(err)
	}
	r, err := sess.Exec("SHOW TABLES")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dbexplorer.RenderResult(r, 0), "UsedCars") {
		t.Error("SHOW TABLES missing table")
	}
	r, err = sess.Exec("SELECT Make, Price FROM UsedCars ORDER BY Price ASC LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Errorf("rows = %d", len(r.Rows))
	}
}

func TestFacadeMushroom(t *testing.T) {
	m := dbexplorer.Mushroom(1)
	if m.NumRows() != 8124 || m.NumCols() != 23 {
		t.Errorf("mushroom dims = (%d,%d)", m.NumRows(), m.NumCols())
	}
}
