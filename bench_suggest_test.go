// Benchmarks for the /suggest service on the 40K featured used-car
// fixture: CADQL completion at the value and number positions, and
// guided drill-down under a live filter set. Each bench reports the
// median per-op latency as p50-ns in addition to the usual mean, since
// the ISSUE's acceptance bar is p50 suggest latency; BENCH_suggest.json
// records the hand-run numbers.
package dbexplorer_test

import (
	"context"
	"sort"
	"sync"
	"testing"
	"time"

	"dbexplorer/internal/suggest"
)

// Suggester over the shared 40K carView, with the FD/Bayes-net model
// mined once: the benches measure serving latency, not model mining.
var (
	sugOnce sync.Once
	sugCars *suggest.Suggester
)

func suggestFixture(b *testing.B) *suggest.Suggester {
	b.Helper()
	fixtures(b)
	sugOnce.Do(func() {
		m, err := suggest.BuildModel(context.Background(), carView)
		if err != nil {
			panic(err)
		}
		sugCars = suggest.New(carView, m)
		if err := sugCars.Warm(context.Background()); err != nil {
			panic(err)
		}
	})
	return sugCars
}

// reportP50 times fn once per iteration and reports the median as
// p50-ns alongside Go's built-in mean ns/op.
func reportP50(b *testing.B, fn func() error) {
	samples := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		if err := fn(); err != nil {
			b.Fatal(err)
		}
		samples = append(samples, time.Since(start))
	}
	b.StopTimer()
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	b.ReportMetric(float64(samples[len(samples)/2]), "p50-ns")
}

// BenchmarkSuggestCompleteValue completes a categorical value position
// under a two-conjunct WHERE prefix: the hot path is one posting-set
// AND-popcount per candidate value plus the model's conditional lift.
func BenchmarkSuggestCompleteValue(b *testing.B) {
	sug := suggestFixture(b)
	ctx := context.Background()
	const stmt = `SELECT * FROM UsedCars WHERE Transmission = Automatic AND BodyType = SUV AND Make = `
	reportP50(b, func() error {
		c, err := sug.Complete(ctx, stmt, suggest.Options{})
		if err != nil {
			return err
		}
		if len(c.Candidates) == 0 {
			b.Fatal("no candidates at value position")
		}
		return nil
	})
}

// BenchmarkSuggestCompleteNumber completes a numeric threshold position:
// histogram-edge literals counted via range-bitmap popcounts, scored by
// split balance.
func BenchmarkSuggestCompleteNumber(b *testing.B) {
	sug := suggestFixture(b)
	ctx := context.Background()
	const stmt = `SELECT * FROM UsedCars WHERE BodyType = SUV AND Price < `
	reportP50(b, func() error {
		c, err := sug.Complete(ctx, stmt, suggest.Options{})
		if err != nil {
			return err
		}
		if len(c.Candidates) == 0 {
			b.Fatal("no candidates at number position")
		}
		return nil
	})
}

// BenchmarkSuggestDrill ranks next facets under a two-attribute filter
// set: chi-square contingencies assembled from intersect-popcounts over
// every queriable attribute, values counted per recommended facet.
func BenchmarkSuggestDrill(b *testing.B) {
	sug := suggestFixture(b)
	ctx := context.Background()
	sels := []suggest.Selection{
		{Attr: "Transmission", Values: []string{"Automatic"}},
		{Attr: "BodyType", Values: []string{"SUV"}},
	}
	reportP50(b, func() error {
		d, err := sug.Drill(ctx, sels, suggest.Options{})
		if err != nil {
			return err
		}
		if d.DeadEnd || len(d.Attrs) == 0 {
			b.Fatal("drill-down returned no recommendations")
		}
		return nil
	})
}

// BenchmarkSuggestDrillCold ranks starting-point facets with no filter
// set: the entropy fallback over marginal histograms, the first screen
// a session sees.
func BenchmarkSuggestDrillCold(b *testing.B) {
	sug := suggestFixture(b)
	ctx := context.Background()
	reportP50(b, func() error {
		d, err := sug.Drill(ctx, nil, suggest.Options{})
		if err != nil {
			return err
		}
		if len(d.Attrs) == 0 {
			b.Fatal("cold drill-down returned no recommendations")
		}
		return nil
	})
}
