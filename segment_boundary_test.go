// Top-level segment-boundary equivalence: tables whose row counts land
// on every awkward segment shape — well inside one segment, one row past
// a segment edge, and an exact multiple of the segment size — must
// produce bit-identical CAD Views across build paths, facet digests that
// match independent row scans, and compiled predicate plans that select
// the same rows cold (no postings yet) and warm.
package dbexplorer_test

import (
	"fmt"
	"reflect"
	"testing"

	"dbexplorer/internal/core"
	"dbexplorer/internal/datagen"
	"dbexplorer/internal/dataset"
	"dbexplorer/internal/dataview"
	"dbexplorer/internal/expr"
	"dbexplorer/internal/facet"
)

// boundaryRowCounts covers a single partial segment, a one-row tail
// spilling into a second segment, and exactly two full segments.
var boundaryRowCounts = []int{40000, dataset.SegmentSize + 1, 2 * dataset.SegmentSize}

// appendBoundaryShapes are (base, final) row counts whose append deltas
// land one row before, exactly on, and one row past the 64K segment
// boundary, plus a growth that stays inside one segment and one that
// opens a full new segment.
var appendBoundaryShapes = [][2]int{
	{dataset.SegmentSize - 100, dataset.SegmentSize - 1},
	{dataset.SegmentSize - 100, dataset.SegmentSize},
	{dataset.SegmentSize - 100, dataset.SegmentSize + 1},
	{dataset.SegmentSize + 50, 2 * dataset.SegmentSize},
	{40000, 41000},
}

func boundaryZipf(n int) *dataset.Table {
	return datagen.ZipfTable(fmt.Sprintf("boundary%d", n), n, []datagen.ZipfColumn{
		{Name: "c0", Card: 50, S: 1.3},
		{Name: "c1", Card: 40, S: 1.2},
	}, int64(n))
}

// tableRows extracts rows [lo, hi) of t in AppendBatch form.
func tableRows(t *dataset.Table, lo, hi int) [][]any {
	schema := t.Schema()
	out := make([][]any, 0, hi-lo)
	for r := lo; r < hi; r++ {
		row := make([]any, len(schema))
		for i := range schema {
			if c := t.Cat(i); c != nil {
				row[i] = c.Value(r)
			} else {
				row[i] = t.Num(i).Value(r)
			}
		}
		out = append(out, row)
	}
	return out
}

// warmTableIndex forces every column's posting sets, frequencies, and
// sorted orders, so a later append exercises the incremental extension
// path instead of a lazy cold build.
func warmTableIndex(tbl *dataset.Table) *dataset.Index {
	ix := tbl.Index()
	for i := range tbl.Schema() {
		if tbl.Cat(i) != nil {
			ix.CatPostings(i)
			ix.CatFreqs(i)
		} else {
			ix.NumCmpRangeLen(i, 0, true, true, false)
		}
	}
	return ix
}

// TestAppendBoundaryEquivalence grows a table across every awkward
// segment shape — the append landing one row before, exactly on, and one
// row past a 64K boundary — with the index warmed before the append so
// Table.Index extends sealed segments instead of rebuilding, and
// requires the extended table to be indistinguishable from a reference
// table built with all rows from the start: identical compiled-predicate
// row sets, facet digests (both the posting-bitmap session path and the
// row-scan path), and rendered plus structural CAD Views.
func TestAppendBoundaryEquivalence(t *testing.T) {
	for _, shape := range appendBoundaryShapes {
		n0, n1 := shape[0], shape[1]
		t.Run(fmt.Sprintf("n=%d+%d", n0, n1-n0), func(t *testing.T) {
			ref := boundaryZipf(n1)
			grown := dataset.NewTable(ref.Name(), ref.Schema())
			if err := grown.AppendBatch(tableRows(ref, 0, n0)); err != nil {
				t.Fatal(err)
			}
			// Warm the base index (and remember the extension counters), so
			// the post-append Index call must go down the extend path.
			warmTableIndex(grown)
			catX0, ordX0 := dataset.IndexExtendStats()
			if err := grown.AppendBatch(tableRows(ref, n0, n1)); err != nil {
				t.Fatal(err)
			}
			ixG := warmTableIndex(grown)
			catX1, ordX1 := dataset.IndexExtendStats()
			if catX1 == catX0 && ordX1 == ordX0 {
				t.Fatal("append did not exercise the incremental index extension path")
			}
			if ixG.Rows() != n1 {
				t.Fatalf("extended index covers %d rows, want %d", ixG.Rows(), n1)
			}
			rows := dataset.AllRows(n1)

			// Compiled predicates over the extended index vs the reference.
			e := &expr.And{Kids: []expr.Expr{
				&expr.Cmp{Attr: "c0", Op: expr.Eq, Str: "v0000"},
				&expr.Cmp{Attr: "score", Op: expr.Le, Num: 500},
			}}
			gotC, err := expr.Compile(grown, e)
			if err != nil {
				t.Fatal(err)
			}
			gotRows, err := gotC.Select(rows)
			if err != nil {
				t.Fatal(err)
			}
			wantC, err := expr.Compile(ref, e)
			if err != nil {
				t.Fatal(err)
			}
			wantRows, err := wantC.Select(rows)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual([]int(gotRows), []int(wantRows)) {
				t.Fatalf("compiled Select over the extended index selects %d rows, reference %d", len(gotRows), len(wantRows))
			}

			// Facet digests: the posting-bitmap session path (which adopts
			// the extended index's posting sets) and the row-scan path must
			// both match the reference build.
			vG, err := dataview.New(grown, dataview.Options{})
			if err != nil {
				t.Fatal(err)
			}
			vR, err := dataview.New(ref, dataview.Options{})
			if err != nil {
				t.Fatal(err)
			}
			sG := facet.NewSession(vG, rows)
			sR := facet.NewSession(vR, rows)
			if !reflect.DeepEqual(sG.Digest(), sR.Digest()) {
				t.Fatal("session digest over the grown table differs from the reference build")
			}
			if !reflect.DeepEqual(facet.Summarize(vG, rows, false), facet.Summarize(vR, rows, false)) {
				t.Fatal("scan digest over the grown table differs from the reference build")
			}

			// CAD Views: bit-identical structure and rendering.
			cfg := core.Config{Pivot: "c0", MaxCompare: 2, K: 2, L: 3, Seed: 1}
			for _, path := range []core.BuildPath{core.PathScan, core.PathBitmap} {
				run := cfg
				run.Path = path
				got, _, err := core.Build(vG, rows, run)
				if err != nil {
					t.Fatalf("path %d (grown): %v", path, err)
				}
				want, _, err := core.Build(vR, rows, run)
				if err != nil {
					t.Fatalf("path %d (reference): %v", path, err)
				}
				if core.Render(got, nil) != core.Render(want, nil) {
					t.Errorf("path %d: rendered CAD View over the grown table differs from the reference", path)
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("path %d: CAD View structure over the grown table differs from the reference", path)
				}
			}
		})
	}
}

func TestSegmentBoundaryEquivalence(t *testing.T) {
	for _, n := range boundaryRowCounts {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			tbl := boundaryZipf(n)
			rows := dataset.AllRows(n)

			// Compiled predicates against the cold table: the planner
			// must build whatever postings it wants and still match the
			// row-at-a-time interpreter, and a recompile against the
			// warmed index must keep the same plan and row set.
			e := &expr.And{Kids: []expr.Expr{
				&expr.Cmp{Attr: "c0", Op: expr.Eq, Str: "v0000"},
				&expr.Cmp{Attr: "score", Op: expr.Le, Num: 500},
			}}
			cold, err := expr.Compile(tbl, e)
			if err != nil {
				t.Fatal(err)
			}
			coldPlan := cold.Explain()
			coldRows, err := cold.Select(rows)
			if err != nil {
				t.Fatal(err)
			}
			wantRows, err := expr.SelectInterpreted(tbl, rows, e)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual([]int(coldRows), []int(wantRows)) {
				t.Fatalf("compiled Select disagrees with interpreter: %d vs %d rows", len(coldRows), len(wantRows))
			}
			warm, err := expr.Compile(tbl, e)
			if err != nil {
				t.Fatal(err)
			}
			if plan := warm.Explain(); plan != coldPlan {
				t.Fatalf("plan changed after index warm-up:\ncold: %s\nwarm: %s", coldPlan, plan)
			}
			warmRows, err := warm.Select(rows)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual([]int(warmRows), []int(coldRows)) {
				t.Fatal("warm Select disagrees with cold Select")
			}

			// Facet digest vs independent references: categorical
			// summaries against the table's value-count scan, numeric
			// summaries against a per-row code tally.
			v, err := dataview.New(tbl, dataview.Options{})
			if err != nil {
				t.Fatal(err)
			}
			digest := facet.Summarize(v, rows, false)
			for _, name := range []string{"c0", "c1"} {
				sum := digest.Attr(name)
				if sum == nil {
					t.Fatalf("digest has no summary for %s", name)
				}
				want := tbl.ValueCounts(tbl.ColIndex(name), rows)
				if len(sum.Values) != len(want) {
					t.Fatalf("%s: %d facet values, want %d", name, len(sum.Values), len(want))
				}
				for i, vc := range sum.Values {
					if vc.Value != want[i].Value || vc.Count != want[i].Count {
						t.Fatalf("%s[%d] = %s:%d, want %s:%d", name, i, vc.Value, vc.Count, want[i].Value, want[i].Count)
					}
				}
			}
			scoreCol, err := v.Column("score")
			if err != nil {
				t.Fatal(err)
			}
			wantBins := map[string]int{}
			for r := 0; r < n; r++ {
				if code := scoreCol.Code(r); code >= 0 {
					wantBins[scoreCol.Label(code)]++
				}
			}
			gotBins := map[string]int{}
			if sum := digest.Attr("score"); sum != nil {
				for _, vc := range sum.Values {
					gotBins[vc.Value] = vc.Count
				}
			}
			if !reflect.DeepEqual(gotBins, wantBins) {
				t.Fatalf("score facet bins = %v, want %v", gotBins, wantBins)
			}

			// CAD View bit-identity: the scan path is the unsegmented
			// reference semantics; the segmented posting paths must
			// render and structure identically on every boundary shape.
			cfg := core.Config{Pivot: "c0", MaxCompare: 2, K: 2, L: 3, Seed: 1}
			scan := cfg
			scan.Path = core.PathScan
			want, _, err := core.Build(v, rows, scan)
			if err != nil {
				t.Fatal(err)
			}
			for _, path := range []core.BuildPath{core.PathAuto, core.PathBitmap} {
				run := cfg
				run.Path = path
				got, _, err := core.Build(v, rows, run)
				if err != nil {
					t.Fatalf("path %d: %v", path, err)
				}
				if core.Render(want, nil) != core.Render(got, nil) {
					t.Errorf("path %d: rendered CAD View differs from scan reference", path)
				}
				if !reflect.DeepEqual(want, got) {
					t.Errorf("path %d: CAD View structure differs from scan reference", path)
				}
			}
		})
	}
}
