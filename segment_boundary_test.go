// Top-level segment-boundary equivalence: tables whose row counts land
// on every awkward segment shape — well inside one segment, one row past
// a segment edge, and an exact multiple of the segment size — must
// produce bit-identical CAD Views across build paths, facet digests that
// match independent row scans, and compiled predicate plans that select
// the same rows cold (no postings yet) and warm.
package dbexplorer_test

import (
	"fmt"
	"reflect"
	"testing"

	"dbexplorer/internal/core"
	"dbexplorer/internal/datagen"
	"dbexplorer/internal/dataset"
	"dbexplorer/internal/dataview"
	"dbexplorer/internal/expr"
	"dbexplorer/internal/facet"
)

// boundaryRowCounts covers a single partial segment, a one-row tail
// spilling into a second segment, and exactly two full segments.
var boundaryRowCounts = []int{40000, dataset.SegmentSize + 1, 2 * dataset.SegmentSize}

func boundaryZipf(n int) *dataset.Table {
	return datagen.ZipfTable(fmt.Sprintf("boundary%d", n), n, []datagen.ZipfColumn{
		{Name: "c0", Card: 50, S: 1.3},
		{Name: "c1", Card: 40, S: 1.2},
	}, int64(n))
}

func TestSegmentBoundaryEquivalence(t *testing.T) {
	for _, n := range boundaryRowCounts {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			tbl := boundaryZipf(n)
			rows := dataset.AllRows(n)

			// Compiled predicates against the cold table: the planner
			// must build whatever postings it wants and still match the
			// row-at-a-time interpreter, and a recompile against the
			// warmed index must keep the same plan and row set.
			e := &expr.And{Kids: []expr.Expr{
				&expr.Cmp{Attr: "c0", Op: expr.Eq, Str: "v0000"},
				&expr.Cmp{Attr: "score", Op: expr.Le, Num: 500},
			}}
			cold, err := expr.Compile(tbl, e)
			if err != nil {
				t.Fatal(err)
			}
			coldPlan := cold.Explain()
			coldRows, err := cold.Select(rows)
			if err != nil {
				t.Fatal(err)
			}
			wantRows, err := expr.SelectInterpreted(tbl, rows, e)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual([]int(coldRows), []int(wantRows)) {
				t.Fatalf("compiled Select disagrees with interpreter: %d vs %d rows", len(coldRows), len(wantRows))
			}
			warm, err := expr.Compile(tbl, e)
			if err != nil {
				t.Fatal(err)
			}
			if plan := warm.Explain(); plan != coldPlan {
				t.Fatalf("plan changed after index warm-up:\ncold: %s\nwarm: %s", coldPlan, plan)
			}
			warmRows, err := warm.Select(rows)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual([]int(warmRows), []int(coldRows)) {
				t.Fatal("warm Select disagrees with cold Select")
			}

			// Facet digest vs independent references: categorical
			// summaries against the table's value-count scan, numeric
			// summaries against a per-row code tally.
			v, err := dataview.New(tbl, dataview.Options{})
			if err != nil {
				t.Fatal(err)
			}
			digest := facet.Summarize(v, rows, false)
			for _, name := range []string{"c0", "c1"} {
				sum := digest.Attr(name)
				if sum == nil {
					t.Fatalf("digest has no summary for %s", name)
				}
				want := tbl.ValueCounts(tbl.ColIndex(name), rows)
				if len(sum.Values) != len(want) {
					t.Fatalf("%s: %d facet values, want %d", name, len(sum.Values), len(want))
				}
				for i, vc := range sum.Values {
					if vc.Value != want[i].Value || vc.Count != want[i].Count {
						t.Fatalf("%s[%d] = %s:%d, want %s:%d", name, i, vc.Value, vc.Count, want[i].Value, want[i].Count)
					}
				}
			}
			scoreCol, err := v.Column("score")
			if err != nil {
				t.Fatal(err)
			}
			wantBins := map[string]int{}
			for r := 0; r < n; r++ {
				if code := scoreCol.Code(r); code >= 0 {
					wantBins[scoreCol.Label(code)]++
				}
			}
			gotBins := map[string]int{}
			if sum := digest.Attr("score"); sum != nil {
				for _, vc := range sum.Values {
					gotBins[vc.Value] = vc.Count
				}
			}
			if !reflect.DeepEqual(gotBins, wantBins) {
				t.Fatalf("score facet bins = %v, want %v", gotBins, wantBins)
			}

			// CAD View bit-identity: the scan path is the unsegmented
			// reference semantics; the segmented posting paths must
			// render and structure identically on every boundary shape.
			cfg := core.Config{Pivot: "c0", MaxCompare: 2, K: 2, L: 3, Seed: 1}
			scan := cfg
			scan.Path = core.PathScan
			want, _, err := core.Build(v, rows, scan)
			if err != nil {
				t.Fatal(err)
			}
			for _, path := range []core.BuildPath{core.PathAuto, core.PathBitmap} {
				run := cfg
				run.Path = path
				got, _, err := core.Build(v, rows, run)
				if err != nil {
					t.Fatalf("path %d: %v", path, err)
				}
				if core.Render(want, nil) != core.Render(got, nil) {
					t.Errorf("path %d: rendered CAD View differs from scan reference", path)
				}
				if !reflect.DeepEqual(want, got) {
					t.Errorf("path %d: CAD View structure differs from scan reference", path)
				}
			}
		})
	}
}
