package dbexplorer_test

import (
	"fmt"
	"log"

	"dbexplorer"
)

// ExampleSession_Exec runs the paper's lookup and exploratory queries
// end to end on a small synthetic dataset.
func ExampleSession_Exec() {
	cars := dbexplorer.UsedCars(2000, 1)
	sess := dbexplorer.NewSession()
	if err := sess.Register(cars); err != nil {
		log.Fatal(err)
	}
	res, err := sess.Exec(`SELECT * FROM UsedCars WHERE BodyType = SUV AND Price < 20K`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cheap SUVs: %d\n", len(res.Rows))

	view, err := sess.Exec(`CREATE CADVIEW v AS SET pivot = Make SELECT Price FROM UsedCars
		WHERE BodyType = SUV AND Make IN (Jeep, Ford) IUNITS 2`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pivot: %s, rows: %d, explicit compare attr: %s\n",
		view.View.Pivot, len(view.View.Rows), view.View.CompareAttrs[0])
	// Output:
	// cheap SUVs: 475
	// pivot: Make, rows: 2, explicit compare attr: Price
}

// ExampleBuildCADView constructs a CAD View programmatically and reads
// a contrast off it.
func ExampleBuildCADView() {
	tbl := dbexplorer.NewTable("pets", dbexplorer.Schema{
		{Name: "Species", Kind: dbexplorer.Categorical, Queriable: true},
		{Name: "Sound", Kind: dbexplorer.Categorical, Queriable: true},
	})
	for i := 0; i < 40; i++ {
		if i%2 == 0 {
			tbl.MustAppendRow("cat", "meow")
		} else {
			tbl.MustAppendRow("dog", "woof")
		}
	}
	view, err := dbexplorer.NewView(tbl)
	if err != nil {
		log.Fatal(err)
	}
	cad, _, err := dbexplorer.BuildCADView(view, dbexplorer.AllRows(40), dbexplorer.CADConfig{
		Pivot: "Species", K: 1, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range cad.Rows {
		fmt.Printf("%s -> %s\n", row.Value, row.IUnits[0].Label("Sound"))
	}
	// Output:
	// cat -> [meow]
	// dog -> [woof]
}

// ExampleDiscoverFDs finds the planted Model -> Make dependency.
func ExampleDiscoverFDs() {
	cars := dbexplorer.UsedCars(3000, 1)
	view, err := dbexplorer.NewView(cars)
	if err != nil {
		log.Fatal(err)
	}
	deps, err := dbexplorer.DiscoverFDs(view, dbexplorer.AllRows(cars.NumRows()),
		[]string{"Make", "Model", "Color"})
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range deps {
		fmt.Println(d)
	}
	// Output:
	// Model -> Make
}
