// Command dbexplorer is an interactive CADQL shell: load a dataset (CSV
// or a builtin synthetic one) and explore it with SELECT, CREATE
// CADVIEW, HIGHLIGHT SIMILAR IUNITS, and REORDER ROWS statements.
//
// Usage:
//
//	dbexplorer -data usedcars -n 40000 -e "CREATE CADVIEW v AS SET pivot = Make SELECT Price FROM UsedCars IUNITS 3"
//	dbexplorer -data mushroom                 # REPL on stdin
//	dbexplorer -data listings.csv -name Cars  # load a CSV
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"dbexplorer"
)

func main() {
	var (
		data    = flag.String("data", "usedcars", "dataset: usedcars, mushroom, or a CSV path")
		name    = flag.String("name", "", "table name for CSV data (default: file path)")
		n       = flag.Int("n", 40000, "row count for synthetic datasets")
		seed    = flag.Int64("seed", 1, "generation and clustering seed")
		exec    = flag.String("e", "", "statements to execute (semicolon separated); empty starts a REPL")
		maxRows = flag.Int("maxrows", 20, "row display cap for SELECT results")
	)
	flag.Parse()

	table, err := loadTable(*data, *name, *n, *seed)
	if err != nil {
		fatal(err)
	}
	sess := dbexplorer.NewSession()
	sess.Seed = *seed
	if err := sess.Register(table); err != nil {
		fatal(err)
	}
	fmt.Printf("Loaded table %s: %d rows, %d attributes\n", table.Name(), table.NumRows(), table.NumCols())

	if *exec != "" {
		for _, stmt := range splitStatements(*exec) {
			if err := run(sess, stmt, *maxRows); err != nil {
				fatal(err)
			}
		}
		return
	}

	fmt.Println(`Enter CADQL statements (end with ';'); "quit" exits.`)
	repl(sess, *maxRows)
}

func loadTable(data, name string, n int, seed int64) (*dbexplorer.Table, error) {
	switch strings.ToLower(data) {
	case "usedcars":
		return dbexplorer.UsedCars(n, seed), nil
	case "mushroom":
		return dbexplorer.Mushroom(seed), nil
	default:
		return dbexplorer.ReadCSVFile(name, data)
	}
}

func splitStatements(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ";") {
		if trimmed := strings.TrimSpace(part); trimmed != "" {
			out = append(out, trimmed)
		}
	}
	return out
}

func run(sess *dbexplorer.Session, stmt string, maxRows int) error {
	res, err := sess.Exec(stmt)
	if err != nil {
		return err
	}
	fmt.Println(dbexplorer.RenderResult(res, maxRows))
	return nil
}

func repl(sess *dbexplorer.Session, maxRows int) {
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 0, 1<<20), 1<<20)
	var pending strings.Builder
	fmt.Print("cadql> ")
	for scanner.Scan() {
		line := scanner.Text()
		if strings.EqualFold(strings.TrimSpace(line), "quit") || strings.EqualFold(strings.TrimSpace(line), "exit") {
			return
		}
		pending.WriteString(line)
		pending.WriteString("\n")
		if strings.Contains(line, ";") {
			for _, stmt := range splitStatements(pending.String()) {
				if err := run(sess, stmt, maxRows); err != nil {
					fmt.Fprintf(os.Stderr, "error: %v\n", err)
				}
			}
			pending.Reset()
			fmt.Print("cadql> ")
		} else {
			fmt.Print("   ... ")
		}
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "dbexplorer: %v\n", err)
	os.Exit(1)
}
