// Command serve runs DBExplorer's HTTP interface: a JSON API plus a
// browser TPFacet page, the deployment shape the paper's own
// implementation used (§6.1).
//
// Usage:
//
//	serve -data usedcars -n 40000 -addr :8080
//	# then open http://localhost:8080/
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"

	"dbexplorer"
	"dbexplorer/internal/dataview"
	"dbexplorer/internal/httpapi"
)

func main() {
	var (
		data = flag.String("data", "usedcars", "dataset: usedcars, mushroom, hotels, or a CSV path")
		name = flag.String("name", "", "table name for CSV data")
		n    = flag.Int("n", 20000, "row count for synthetic datasets")
		seed = flag.Int64("seed", 1, "generation and clustering seed")
		addr = flag.String("addr", "127.0.0.1:8080", "listen address")
	)
	flag.Parse()

	var table *dbexplorer.Table
	var err error
	switch strings.ToLower(*data) {
	case "usedcars":
		table = dbexplorer.UsedCars(*n, *seed)
	case "mushroom":
		table = dbexplorer.Mushroom(*seed)
	case "hotels":
		table = dbexplorer.Hotels(*n, *seed)
	default:
		table, err = dbexplorer.ReadCSVFile(*name, *data)
		if err != nil {
			fatal(err)
		}
	}
	view, err := dataview.New(table, dataview.Options{})
	if err != nil {
		fatal(err)
	}
	srv := httpapi.NewServer(view, *seed)
	fmt.Printf("DBExplorer serving %s (%d tuples) on http://%s/\n", table.Name(), table.NumRows(), *addr)
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "serve: %v\n", err)
	os.Exit(1)
}
