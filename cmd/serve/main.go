// Command serve runs DBExplorer's HTTP interface: the versioned JSON API
// (/api/v1/...), a browser TPFacet page, and the /debug/metrics and
// /debug/vars observability endpoints — the deployment shape the paper's
// own implementation used (§6.1), grown into a production serving core.
//
// Usage:
//
//	serve -data usedcars -n 40000 -addr :8080
//	serve -data usedcars,mushroom -cache 256 -timeout 10s -max-concurrent 8
//	# then open http://localhost:8080/
//
// -data takes a comma-separated list; each entry is a built-in dataset
// name (usedcars, mushroom, hotels) or a CSV path. The first entry is
// the default dataset served by the unversioned (deprecated) /api/*
// aliases and the embedded UI; the rest are reachable under
// /api/v1/{dataset}/.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"dbexplorer"
	"dbexplorer/internal/dataview"
	"dbexplorer/internal/httpapi"
)

func main() {
	var (
		data    = flag.String("data", "usedcars", "comma-separated datasets: usedcars, mushroom, hotels, or CSV paths")
		name    = flag.String("name", "", "table name for CSV data (single-CSV runs only)")
		n       = flag.Int("n", 20000, "row count for synthetic datasets")
		seed    = flag.Int64("seed", 1, "generation and clustering seed")
		addr    = flag.String("addr", "127.0.0.1:8080", "listen address")
		cache   = flag.Int("cache", httpapi.DefaultCacheSize, "CAD View cache capacity (0 disables)")
		timeout = flag.Duration("timeout", httpapi.DefaultRequestTimeout, "per-request deadline (0 disables)")
		maxConc = flag.Int("max-concurrent", 0, "max concurrent API requests (0 = worker-pool width)")
		queue   = flag.Int("queue-depth", 0, "requests allowed to wait for a slot before shedding (0 = 4x max-concurrent)")
		drain   = flag.Duration("drain", 15*time.Second, "graceful-shutdown budget for in-flight requests")
		debug   = flag.String("debug-addr", "", "private listen address for pprof/metrics/expvar (empty disables)")
		warmSug = flag.Bool("warm-suggest", false, "mine suggestion models and build posting sets at startup instead of on first /suggest request")
		ingest  = flag.Int("max-ingest-batch", httpapi.DefaultMaxIngestBatch, "max rows per /ingest request (<= 0 removes the bound)")
	)
	flag.Parse()

	opts := []httpapi.Option{
		httpapi.WithSeed(*seed),
		httpapi.WithCacheSize(*cache),
		httpapi.WithRequestTimeout(*timeout),
		httpapi.WithMaxConcurrent(*maxConc),
		httpapi.WithMaxIngestBatch(*ingest),
	}
	if *queue != 0 {
		opts = append(opts, httpapi.WithQueueDepth(*queue))
	}
	srv := httpapi.NewServer(opts...)
	srv.Metrics().PublishExpvar("dbexplorer")

	for _, spec := range strings.Split(*data, ",") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		table, err := loadTable(spec, *name, *n, *seed)
		if err != nil {
			fatal(err)
		}
		view, err := dataview.New(table, dataview.Options{})
		if err != nil {
			fatal(err)
		}
		if err := srv.Register(table.Name(), view); err != nil {
			fatal(err)
		}
		fmt.Printf("registered %-12s %6d tuples  http://%s/api/v1/%s/schema  (ingest: POST /api/v1/%s/ingest)\n",
			table.Name(), table.NumRows(), *addr, table.Name(), table.Name())
	}

	if *warmSug {
		start := time.Now()
		if err := srv.WarmSuggest(context.Background()); err != nil {
			fatal(err)
		}
		fmt.Printf("suggestion models warmed in %v\n", time.Since(start).Round(time.Millisecond))
	}

	if *debug != "" {
		serveDebug(*debug, srv)
	}

	fmt.Printf("DBExplorer serving on http://%s/  (metrics: http://%s/debug/metrics)\n", *addr, *addr)
	if err := run(*addr, *drain, srv); err != nil {
		fatal(err)
	}
}

// serveDebug starts the private observability listener: pprof profiles,
// the metrics snapshot, and expvar, on their own address so profiling
// endpoints are never exposed through the public API port. Off unless
// -debug-addr is set; a listen failure degrades to a warning rather than
// taking the serving process down.
func serveDebug(addr string, srv *httpapi.Server) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/metrics", srv.Metrics())
	mux.Handle("/debug/vars", expvar.Handler())
	go func() {
		if err := http.ListenAndServe(addr, mux); err != nil {
			fmt.Fprintf(os.Stderr, "serve: debug listener on %s failed: %v\n", addr, err)
		}
	}()
	fmt.Printf("debug endpoints on http://%s/debug/pprof/ (private)\n", addr)
}

// run serves until SIGINT/SIGTERM, then shuts down gracefully: stop
// accepting connections, let http.Server.Shutdown wait for handlers to
// return, drain the admission gate so every in-flight build has really
// released its slot, and print a final metrics snapshot — all within the
// drain budget. A second signal aborts immediately.
func run(addr string, drainBudget time.Duration, srv *httpapi.Server) error {
	hs := &http.Server{Addr: addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()

	select {
	case err := <-errc:
		return err // listener failed before any signal
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second ^C kills us
	fmt.Fprintln(os.Stderr, "serve: shutting down, draining in-flight requests...")

	dctx, cancel := context.WithTimeout(context.Background(), drainBudget)
	defer cancel()
	shutdownErr := hs.Shutdown(dctx)
	if err := srv.Drain(dctx); err != nil && shutdownErr == nil {
		shutdownErr = fmt.Errorf("draining admission gate: %w", err)
	}

	// Final metrics snapshot, so a scrape gap at shutdown still leaves
	// the totals in the logs.
	if snap, err := json.MarshalIndent(srv.Metrics().Snapshot(), "", "  "); err == nil {
		fmt.Fprintf(os.Stderr, "serve: final metrics\n%s\n", snap)
	}

	if shutdownErr != nil && !errors.Is(shutdownErr, http.ErrServerClosed) {
		return shutdownErr
	}
	return nil
}

// loadTable resolves one -data entry to a table: a built-in generator or
// a CSV path.
func loadTable(spec, csvName string, n int, seed int64) (*dbexplorer.Table, error) {
	switch strings.ToLower(spec) {
	case "usedcars":
		return dbexplorer.UsedCars(n, seed), nil
	case "mushroom":
		return dbexplorer.Mushroom(seed), nil
	case "hotels":
		return dbexplorer.Hotels(n, seed), nil
	}
	name := csvName
	if name == "" {
		name = strings.TrimSuffix(filepath.Base(spec), filepath.Ext(spec))
	}
	return dbexplorer.ReadCSVFile(name, spec)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "serve: %v\n", err)
	os.Exit(1)
}
