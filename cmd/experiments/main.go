// Command experiments regenerates the paper's evaluation tables and
// figures (Table 1, Figures 2-10, and the §6.3 sampling optimization),
// printing each alongside the numbers the paper reports.
//
// Usage:
//
//	experiments -run all            # the whole battery (minutes)
//	experiments -run table1,fig8    # selected experiments
//	experiments -run fig2 -quick    # reduced scale, seconds
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dbexplorer"
)

func main() {
	var (
		run   = flag.String("run", "all", `experiment ids, comma separated, or "all"`)
		seed  = flag.Int64("seed", 1, "data generation and simulation seed")
		quick = flag.Bool("quick", false, "reduced dataset sizes and repetitions")
		sims  = flag.Int("sims", 0, "simulations per performance point (0 = default)")
		list  = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range dbexplorer.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	cfg := dbexplorer.ExperimentConfig{Seed: *seed, Quick: *quick, Sims: *sims}
	if *run == "all" {
		out, err := dbexplorer.RunAllExperiments(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Print(out)
		return
	}
	for _, id := range strings.Split(*run, ",") {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		out, err := dbexplorer.RunExperiment(id, cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("=== %s ===\n%s\n", strings.ToUpper(id), out)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
	os.Exit(1)
}
