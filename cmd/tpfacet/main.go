// Command tpfacet is the interactive TPFacet two-phased faceted
// interface (paper §5) as a terminal session: filter and read the
// digest in the query-revision phase, build and manipulate CAD Views in
// the exploration phase.
//
// Usage:
//
//	tpfacet -data usedcars -n 20000
//	tpfacet -data mushroom
//
// then type "help" at the prompt.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"dbexplorer"
	"dbexplorer/internal/dataset"
	"dbexplorer/internal/dataview"
	"dbexplorer/internal/tpfacetcli"
)

func main() {
	var (
		data = flag.String("data", "usedcars", "dataset: usedcars, mushroom, or a CSV path")
		name = flag.String("name", "", "table name for CSV data")
		n    = flag.Int("n", 20000, "row count for synthetic datasets")
		seed = flag.Int64("seed", 1, "generation and clustering seed")
	)
	flag.Parse()

	var table *dbexplorer.Table
	var err error
	switch strings.ToLower(*data) {
	case "usedcars":
		table = dbexplorer.UsedCars(*n, *seed)
	case "mushroom":
		table = dbexplorer.Mushroom(*seed)
	default:
		table, err = dbexplorer.ReadCSVFile(*name, *data)
		if err != nil {
			fatal(err)
		}
	}
	view, err := dataview.New(table, dataview.Options{})
	if err != nil {
		fatal(err)
	}
	cli := tpfacetcli.New(view, dataset.AllRows(table.NumRows()))
	cli.Seed = *seed

	fmt.Printf("TPFacet over %s (%d tuples). Queriable attributes: %s\n",
		table.Name(), table.NumRows(), strings.Join(cli.Attrs(), ", "))
	fmt.Println(`Type "help" for commands, "quit" to exit.`)

	scanner := bufio.NewScanner(os.Stdin)
	fmt.Print("tpfacet> ")
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		if strings.EqualFold(line, "quit") || strings.EqualFold(line, "exit") {
			return
		}
		out, err := cli.Exec(line)
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
		} else if out != "" {
			fmt.Print(out)
		}
		fmt.Print("tpfacet> ")
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "tpfacet: %v\n", err)
	os.Exit(1)
}
