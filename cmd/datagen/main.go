// Command datagen emits the synthetic evaluation datasets as CSV so they
// can be inspected or loaded into other tools.
//
// Usage:
//
//	datagen -dataset usedcars -n 40000 -seed 1 -o usedcars.csv
//	datagen -dataset mushroom > mushroom.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"dbexplorer"
)

func main() {
	var (
		name = flag.String("dataset", "usedcars", "usedcars or mushroom")
		n    = flag.Int("n", 40000, "row count (usedcars only; mushroom is fixed at 8124)")
		seed = flag.Int64("seed", 1, "generation seed")
		out  = flag.String("o", "", "output path (default stdout)")
	)
	flag.Parse()

	var table *dbexplorer.Table
	switch strings.ToLower(*name) {
	case "usedcars":
		table = dbexplorer.UsedCars(*n, *seed)
	case "mushroom":
		table = dbexplorer.Mushroom(*seed)
	default:
		fatal(fmt.Errorf("unknown dataset %q (want usedcars or mushroom)", *name))
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	if err := table.WriteCSV(bw); err != nil {
		fatal(err)
	}
	if err := bw.Flush(); err != nil {
		fatal(err)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "wrote %d rows to %s\n", table.NumRows(), *out)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
	os.Exit(1)
}
