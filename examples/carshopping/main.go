// Carshopping walks through the paper's Example 1 end to end: Mary's
// initial lookup query, the exploratory CAD View, finding IUnits similar
// to one she likes (HIGHLIGHT SIMILAR IUNITS), finding makes similar to
// a make she likes (REORDER ROWS), and the final narrowed lookup —
// including querying the hidden Engine attribute via visible surrogates
// (Limitation 2).
package main

import (
	"fmt"
	"log"

	"dbexplorer"
)

func main() {
	cars := dbexplorer.UsedCars(40000, 1)
	sess := dbexplorer.NewSession()
	sess.Seed = 1
	if err := sess.Register(cars); err != nil {
		log.Fatal(err)
	}

	// Step 1 — the initial lookup query returns far too many rows to
	// browse.
	res, err := sess.Exec(`SELECT * FROM UsedCars
		WHERE Mileage BETWEEN 10K AND 30K AND
		      Transmission = Automatic AND BodyType = SUV`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Step 1: Mary's initial query matches %d SUVs — too many to browse.\n\n", len(res.Rows))

	// Step 2 — the exploratory query: a CAD View comparing her five
	// candidate makes.
	res, err = sess.Exec(`CREATE CADVIEW CompareMakes AS
		SET pivot = Make
		SELECT Price
		FROM UsedCars
		WHERE Mileage BETWEEN 10K AND 30K AND
		      Transmission = Automatic AND BodyType = SUV AND
		      Make IN (Jeep, Toyota, Honda, Ford, Chevrolet)
		LIMIT COLUMNS 5 IUNITS 3`)
	if err != nil {
		log.Fatal(err)
	}
	view := res.View
	fmt.Println("Step 2: the CAD View in context of her selections:")
	fmt.Println(dbexplorer.RenderResult(res, 0))

	// Step 3 — Mary likes Chevrolet's compact-SUV IUnit; which other
	// makes offer something similar?
	h, err := sess.Exec(fmt.Sprintf(
		"HIGHLIGHT SIMILAR IUNITS IN CompareMakes WHERE SIMILARITY(Chevrolet, 1) > %.2f", view.Tau))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Step 3: IUnits similar to Chevrolet's IUnit 1:")
	for _, m := range h.Highlight.Matches {
		fmt.Printf("  %s IUnit %d (similarity %.2f of max %d)\n",
			m.Ref.PivotValue, m.Ref.Rank, m.Similarity, len(view.CompareAttrs))
	}

	// Step 4 — which makes are most like Chevrolet overall?
	r, err := sess.Exec("REORDER ROWS IN CompareMakes ORDER BY SIMILARITY(Chevrolet) DESC")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nStep 4: makes ordered by similarity to Chevrolet:")
	for _, s := range r.Similarities {
		fmt.Printf("  %-10s (Algorithm-2 distance %.0f)\n", s.PivotValue, s.Distance)
	}

	// Step 5 — Limitation 2: Mary wants a V4 engine but Engine is not a
	// queriable attribute. The CAD View showed her that V4 SUVs in her
	// range are the Compass/Patriot/Captiva-style compacts at 15K-25K,
	// so she queries them through visible surrogates.
	res, err = sess.Exec(`SELECT Make, Model, Price, Engine FROM UsedCars
		WHERE Mileage BETWEEN 10K AND 30K AND
		      Transmission = Automatic AND BodyType = SUV AND
		      Price BETWEEN 14K AND 24K AND Drivetrain = 2WD AND
		      Make IN (Jeep, Chevrolet, Ford)
		LIMIT 10`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nStep 5: querying the hidden Engine attribute via surrogates (expect V4s):")
	fmt.Println(dbexplorer.RenderResult(res, 10))
}
