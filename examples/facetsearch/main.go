// Facetsearch demonstrates the TPFacet two-phased interface (§5): the
// query-revision phase looks at the CAD View, the result-set phase looks
// at the faceted summary digest — and contrasts what the Solr-style
// baseline shows for the same selections. It also shows Limitation 2:
// the baseline cannot filter on the non-queriable Engine attribute at
// all, while TPFacet can still pivot on it.
package main

import (
	"fmt"
	"log"

	"dbexplorer"
)

func main() {
	cars := dbexplorer.UsedCars(20000, 1)
	view, err := dbexplorer.NewView(cars)
	if err != nil {
		log.Fatal(err)
	}
	base := dbexplorer.AllRows(cars.NumRows())

	// ----- Baseline: Solr-style faceted navigation -----
	baseline := dbexplorer.NewFacetSession(view, base)
	if err := baseline.Select("BodyType", "SUV"); err != nil {
		log.Fatal(err)
	}
	if err := baseline.Select("Make", "Jeep"); err != nil {
		log.Fatal(err)
	}
	if err := baseline.Select("Make", "Ford"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Baseline: BodyType=SUV, Make in {Jeep, Ford} -> %d tuples\n", baseline.Count())
	fmt.Println("The baseline's entire view of the data is the summary digest:")
	digest := baseline.Digest()
	for _, attr := range []string{"Make", "Drivetrain", "Price"} {
		s := digest.Attr(attr)
		fmt.Printf("  %-12s", attr+":")
		for _, vc := range s.Values {
			fmt.Printf(" %s(%d)", vc.Value, vc.Count)
		}
		fmt.Println()
	}
	// Limitation 2: Engine is in the data but not in the query panel.
	if err := baseline.Select("Engine", "V4"); err != nil {
		fmt.Printf("  Selecting Engine=V4 fails as expected: %v\n\n", err)
	}

	// ----- TPFacet: the same filters plus the CAD View phase -----
	tp := dbexplorer.NewTPFacet(view, base)
	if err := tp.Select("BodyType", "SUV"); err != nil {
		log.Fatal(err)
	}
	if err := tp.Select("Make", "Jeep"); err != nil {
		log.Fatal(err)
	}
	if err := tp.Select("Make", "Ford"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("TPFacet query-revision phase — CAD View of the current result set, pivot Make:")
	cad, err := tp.BuildCADView(dbexplorer.CADConfig{Pivot: "Make", K: 2, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(dbexplorer.RenderCADView(cad, nil))

	// The CAD View can even pivot on the hidden attribute.
	fmt.Println("TPFacet pivoting on the NON-QUERIABLE Engine attribute (Limitation 2 lifted):")
	engineCad, err := tp.BuildCADView(dbexplorer.CADConfig{Pivot: "Engine", K: 2, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(dbexplorer.RenderCADView(engineCad, nil))
}
