// Mushroom reproduces the user study's exploration tasks through the
// programmatic API: pivot the CAD View on the class attribute to build a
// simple classifier (§6.2.1) and find an alternative search condition
// for a given selection (§6.2.3) on the synthetic Mushroom dataset.
package main

import (
	"fmt"
	"log"

	"dbexplorer"
)

func main() {
	shrooms := dbexplorer.Mushroom(1)
	view, err := dbexplorer.NewView(shrooms)
	if err != nil {
		log.Fatal(err)
	}
	all := dbexplorer.AllRows(shrooms.NumRows())

	// Task 1 — Simple Classifier for Bruises=true. Pivoting on Bruises
	// surfaces the attributes whose values separate true from false.
	cad, _, err := dbexplorer.BuildCADView(view, all, dbexplorer.CADConfig{
		Pivot: "Bruises",
		K:     3,
		Seed:  1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("CAD View pivoted on Bruises — the Compare Attributes are the best class predictors:")
	fmt.Println(cad.CompareAttrs)
	fmt.Println(dbexplorer.RenderCADView(cad, nil))

	// Read the contrast directly: RingType=pendant dominates the
	// Bruises=true row and is absent from the false row, so it is the
	// one-value classifier. Verify its F1 with a lookup query.
	sess := dbexplorer.NewSession()
	if err := sess.Register(shrooms); err != nil {
		log.Fatal(err)
	}
	predicted, err := sess.Exec("SELECT * FROM Mushroom WHERE RingType = pendant")
	if err != nil {
		log.Fatal(err)
	}
	actual, err := sess.Exec("SELECT * FROM Mushroom WHERE Bruises = 'true'")
	if err != nil {
		log.Fatal(err)
	}
	both, err := sess.Exec("SELECT * FROM Mushroom WHERE RingType = pendant AND Bruises = 'true'")
	if err != nil {
		log.Fatal(err)
	}
	tp := len(both.Rows)
	precision := float64(tp) / float64(len(predicted.Rows))
	recall := float64(tp) / float64(len(actual.Rows))
	fmt.Printf("Classifier RingType=pendant for Bruises=true: precision %.3f, recall %.3f, F1 %.3f\n\n",
		precision, recall, 2*precision*recall/(precision+recall))

	// Task 3 — Alternative Search Condition. The given selection
	// StalkShape=enlarged AND SporePrintColor=chocolate identifies a
	// poisonous subtype; Odor=foul retrieves (almost) the same rows.
	given, err := sess.Exec("SELECT * FROM Mushroom WHERE StalkShape = enlarged AND SporePrintColor = chocolate")
	if err != nil {
		log.Fatal(err)
	}
	alt, err := sess.Exec("SELECT * FROM Mushroom WHERE Odor = foul")
	if err != nil {
		log.Fatal(err)
	}
	overlap := given.Rows.Jaccard(alt.Rows)
	fmt.Printf("Alternative condition: given selects %d rows, Odor=foul selects %d, Jaccard overlap %.3f\n",
		len(given.Rows), len(alt.Rows), overlap)
	// The study's retrieval-error metric compares the two result sets'
	// faceted summary digests.
	fmt.Printf("Digest similarity of the two result sets: %.4f\n",
		similarity(view, given.Rows, alt.Rows))
	fmt.Println("The CAD View row for StalkShape=enlarged exposes Odor=foul and " +
		"StalkSurfaceAboveRing=silky as its distinctive co-occurring values — " +
		"exactly the surrogates an informed user would try.")
}

func similarity(view *dbexplorer.View, a, b dbexplorer.RowSet) float64 {
	da := dbexplorer.Summarize(view, a, true)
	db := dbexplorer.Summarize(view, b, true)
	return dbexplorer.DigestSimilarity(da, db)
}
