// Quickstart: load the synthetic used-car dataset, run the paper's
// CREATE CADVIEW example (§2.1.2), and print the Table-1-style CAD View.
package main

import (
	"fmt"
	"log"

	"dbexplorer"
)

func main() {
	// 40,000 listings, like the paper's YahooUsedCar scrape.
	cars := dbexplorer.UsedCars(40000, 1)

	sess := dbexplorer.NewSession()
	sess.Seed = 1
	if err := sess.Register(cars); err != nil {
		log.Fatal(err)
	}

	// Mary wants an automatic SUV with 10K-30K miles and is comparing
	// five manufacturers; Price is her explicitly chosen Compare
	// Attribute, the other four are selected automatically.
	res, err := sess.Exec(`CREATE CADVIEW CompareMakes AS
		SET pivot = Make
		SELECT Price
		FROM UsedCars
		WHERE Mileage BETWEEN 10K AND 30K AND
		      Transmission = Automatic AND BodyType = SUV AND
		      Make IN (Jeep, Toyota, Honda, Ford, Chevrolet)
		LIMIT COLUMNS 5 IUNITS 3`)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Compare Attributes:", res.View.CompareAttrs)
	fmt.Println(dbexplorer.RenderResult(res, 0))
}
