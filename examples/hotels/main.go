// Hotels replays the paper's introduction: a traveler books a hotel in
// an unfamiliar big city. Without exploration she cannot know that the
// five-star hotels cluster in the Financial District, that price trades
// off against location, or that hostel prices live on another scale —
// the CAD View surfaces all three in a couple of interactions.
package main

import (
	"fmt"
	"log"

	"dbexplorer"
)

func main() {
	hotels := dbexplorer.Hotels(6000, 1)
	view, err := dbexplorer.NewView(hotels)
	if err != nil {
		log.Fatal(err)
	}
	rows := dbexplorer.AllRows(hotels.NumRows())

	// A naive summary statistic — the paper's "average price for a
	// hotel room ... of only limited value".
	price, err := hotels.NumByName("Price")
	if err != nil {
		log.Fatal(err)
	}
	var total float64
	for _, r := range rows {
		total += price.Value(r)
	}
	fmt.Printf("City-wide average nightly price: $%.0f — but is that meaningful?\n\n", total/float64(len(rows)))

	// CAD View pivoted on Area: each neighbourhood summarized in
	// context, exposing who is expensive and what lives where.
	cad, _, err := dbexplorer.BuildCADView(view, rows, dbexplorer.CADConfig{
		Pivot:        "Area",
		CompareAttrs: []string{"Price"},
		K:            2,
		Seed:         1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("CAD View, pivot = Area (what does each neighbourhood offer?):")
	fmt.Println(dbexplorer.RenderCADView(cad, nil))

	// Pivot on StarRating to see where the five-star hotels live.
	starCad, _, err := dbexplorer.BuildCADView(view, rows, dbexplorer.CADConfig{
		Pivot: "StarRating",
		K:     2,
		Seed:  1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("CAD View, pivot = StarRating (where are the five-star hotels?):")
	fmt.Println(dbexplorer.RenderCADView(starCad, nil))

	// The backpacker's view: restrict to hostels; the in-context price
	// summary now bears no resemblance to the citywide average.
	tp := dbexplorer.NewTPFacet(view, rows)
	if err := tp.Select("HotelType", "Hostel"); err != nil {
		log.Fatal(err)
	}
	hostelCad, err := tp.BuildCADView(dbexplorer.CADConfig{
		Pivot:        "Area",
		CompareAttrs: []string{"Price"},
		K:            1,
		Seed:         1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("The backpacker's CAD View (HotelType = Hostel, pivot = Area):")
	fmt.Println(dbexplorer.RenderCADView(hostelCad, nil))
}
