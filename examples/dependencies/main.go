// Dependencies explores the attribute-interaction extensions the
// paper's related work points to (§7): a Chow-Liu Bayesian network of
// probabilistic dependencies, exact and approximate functional
// dependencies, CORDS-style correlations, and a decision-tree result
// categorization — all over the synthetic used-car result set, side by
// side with the CAD View they complement.
package main

import (
	"fmt"
	"log"

	"dbexplorer"
)

func main() {
	cars := dbexplorer.UsedCars(20000, 1)
	view, err := dbexplorer.NewView(cars)
	if err != nil {
		log.Fatal(err)
	}
	rows := dbexplorer.AllRows(cars.NumRows())
	attrs := []string{"Make", "Model", "BodyType", "Engine", "Drivetrain", "Price", "FuelEconomy", "Color"}

	// 1. Functional dependencies: which attributes determine which?
	deps, err := dbexplorer.DiscoverFDs(view, rows, attrs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Functional dependencies (g3 <= 0.05):")
	for _, d := range deps {
		fmt.Println(" ", d)
	}

	// 2. Correlations: softer interactions a user should know about.
	corrs, err := dbexplorer.DiscoverCorrelations(view, rows, attrs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nStrongest correlations (Cramér's V):")
	for i, c := range corrs {
		if i == 8 {
			break
		}
		fmt.Printf("  %-12s ~ %-12s V=%.3f\n", c.A, c.B, c.CramerV)
	}

	// 3. A Bayesian network of the whole interaction structure.
	net, err := dbexplorer.LearnBayesNet(view, rows, attrs, dbexplorer.BayesNetOptions{Root: "Make"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nChow-Liu dependency tree (rooted at Make):")
	fmt.Print(net.Render())
	p, err := net.Prob("Engine", "V8", "Suburban 1500 LT")
	if err == nil {
		fmt.Printf("P(Engine=V8 | Model=Suburban 1500 LT) = %.2f\n", p)
	}

	// 4. Decision-tree categorization of the SUV result set — the
	// related-work baseline for navigating a large result.
	suvs := rows.Filter(func(r int) bool {
		bt, _ := cars.CatByName("BodyType")
		return bt.Value(r) == "SUV"
	})
	tree, err := dbexplorer.BuildDecisionTree(view, suvs, "Make",
		[]string{"Model", "Engine", "Drivetrain", "Price"}, dbexplorer.DecisionTreeOptions{MaxDepth: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nDecision-tree categorization of the SUV result set (class = Make):")
	fmt.Print(tree.Render())
	fmt.Printf("categories: %d leaves, training accuracy %.3f\n", tree.Leaves(), tree.Accuracy(suvs))
}
